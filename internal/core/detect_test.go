package core

import (
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// loc stamps a fake source location so violations deduplicate correctly.
func loc(ev trace.Event, line int32) trace.Event {
	ev.File = "app.go"
	ev.Line = line
	return ev
}

func analyze(t *testing.T, b *testutil.TraceBuilder) *Report {
	t.Helper()
	rep, err := Analyze(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func onlyViolation(t *testing.T, rep *Report) *Violation {
	t.Helper()
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %d:\n%s", len(rep.Violations), rep)
	}
	return rep.Violations[0]
}

// putEv builds a Put of 4 bytes to win 1 target `target` at disp.
func putEv(target int32, originAddr uint64, disp uint64, line int32) trace.Event {
	return loc(trace.Event{Kind: trace.KindPut, Win: 1, Target: target,
		OriginAddr: originAddr, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: disp, TargetType: trace.TypeInt32, TargetCount: 1}, line)
}

func getEv(target int32, originAddr uint64, disp uint64, line int32) trace.Event {
	return loc(trace.Event{Kind: trace.KindGet, Win: 1, Target: target,
		OriginAddr: originAddr, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: disp, TargetType: trace.TypeInt32, TargetCount: 1}, line)
}

func accEv(target int32, originAddr uint64, disp uint64, op trace.AccOp, line int32) trace.Event {
	return loc(trace.Event{Kind: trace.KindAccumulate, Win: 1, Target: target, AccOp: op,
		OriginAddr: originAddr, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: disp, TargetType: trace.TypeInt32, TargetCount: 1}, line)
}

// TestFigure2a: store to the origin buffer of a pending Put within one
// epoch (the ADLB/GFMC bug class).
func TestFigure2a(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 10))
	b.Add(0, loc(trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 4}, 11))
	b.Fence(1)
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if v.Class != WithinEpoch || v.Severity != SevError {
		t.Errorf("violation = %v", v)
	}
	if v.A.Kind != trace.KindPut || v.B.Kind != trace.KindStore {
		t.Errorf("pair = %v, %v", v.A.Kind, v.B.Kind)
	}
	if !strings.Contains(v.Rule, "origin buffer") {
		t.Errorf("rule = %q", v.Rule)
	}
}

// TestFigure1: load of the origin buffer of a pending Get (the
// BT-broadcast infinite-loop bug).
func TestFigure1(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 1))
	b.Add(0, getEv(1, 0x500, 0, 5))
	b.Add(0, loc(trace.Event{Kind: trace.KindLoad, Addr: 0x500, Size: 4}, 4))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 8))
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if v.Class != WithinEpoch || v.A.Kind != trace.KindGet || v.B.Kind != trace.KindLoad {
		t.Errorf("violation = %v", v)
	}
	// Diagnostics point at the conflicting lines (paper: lines 4 and 5).
	if v.A.Line != 5 || v.B.Line != 4 {
		t.Errorf("lines = %d, %d", v.A.Line, v.B.Line)
	}
}

// Loads of a Put origin are permitted; accesses after the epoch closes are
// ordered and safe.
func TestIntraEpochNegatives(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 10))
	b.Add(0, loc(trace.Event{Kind: trace.KindLoad, Addr: 0x500, Size: 4}, 11)) // load of put origin: OK
	b.Fence(1)
	b.Add(0, loc(trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 4}, 12)) // after close: OK
	b.Fence(1)
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("unexpected violations:\n%s", rep)
	}
}

// A store before the Put is issued is program-ordered and safe.
func TestStoreBeforePutIsFine(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, loc(trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 4}, 9))
	b.Add(0, putEv(1, 0x500, 0, 10))
	b.Fence(1)
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("unexpected violations:\n%s", rep)
	}
}

// Two Gets into the same origin buffer in one epoch conflict.
func TestTwoGetsSameOrigin(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, getEv(1, 0x500, 0, 20))
	b.Add(0, getEv(1, 0x500, 8, 21))
	b.Fence(1)
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if !strings.Contains(v.Rule, "origin buffer") {
		t.Errorf("rule = %q", v.Rule)
	}
}

// Two Puts to overlapping target regions within one epoch conflict
// (Put×Put is NON-OV in Table I).
func TestTwoPutsSameTargetIntraEpoch(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 30))
	b.Add(0, putEv(1, 0x600, 0, 31)) // same target disp, different origin
	b.Fence(1)
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if !strings.Contains(v.Rule, "target regions") {
		t.Errorf("rule = %q", v.Rule)
	}
}

// Non-overlapping puts in one epoch are fine.
func TestDisjointPutsFine(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 30))
	b.Add(0, putEv(1, 0x600, 8, 31))
	b.Fence(1)
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("unexpected violations:\n%s", rep)
	}
}

// TestFigure2b: concurrent Puts from two origins to the same window region
// of a third process in an active-target (fence) epoch.
func TestFigure2b(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 40))
	b.Add(2, putEv(1, 0x700, 0, 42))
	b.Fence(1)
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if v.Class != AcrossProcesses || v.Severity != SevError {
		t.Errorf("violation = %v", v)
	}
	if v.A.Rank == v.B.Rank {
		t.Error("conflict must span processes")
	}
}

// TestFigure2c: concurrent Put and Get on overlapping window bytes in a
// passive-target epoch.
func TestFigure2c(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 2, Lock: trace.LockShared}, 50))
	b.Add(0, putEv(2, 0x500, 0, 51))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 2}, 52))
	b.Add(1, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 2, Lock: trace.LockShared}, 53))
	b.Add(1, getEv(2, 0x600, 0, 54))
	b.Add(1, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 2}, 55))
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if v.Class != AcrossProcesses {
		t.Errorf("violation = %v", v)
	}
	kinds := map[trace.Kind]bool{v.A.Kind: true, v.B.Kind: true}
	if !kinds[trace.KindPut] || !kinds[trace.KindGet] {
		t.Errorf("pair = %v,%v", v.A.Kind, v.B.Kind)
	}
}

// TestFigure2d: a Put from the origin conflicting with a local store at
// the target process.
func TestFigure2d(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 60))
	b.Add(0, putEv(1, 0x500, 0, 61))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 62))
	b.Add(1, loc(trace.Event{Kind: trace.KindStore, Addr: 0x1000, Size: 4}, 63))
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if v.Class != AcrossProcesses || v.Severity != SevError {
		t.Errorf("violation = %v", v)
	}
	if v.A.Kind != trace.KindPut || v.B.Kind != trace.KindStore {
		t.Errorf("pair = %v,%v", v.A.Kind, v.B.Kind)
	}
}

// The store rule fires even without byte overlap when the store touches
// the exposed window (paper §IV-C-4).
func TestStoreRuleWithoutOverlap(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 70))
	b.Add(0, putEv(1, 0x500, 0, 71)) // writes window bytes [0x1000,0x1004)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 72))
	b.Add(1, loc(trace.Event{Kind: trace.KindStore, Addr: 0x1020, Size: 4}, 73)) // disjoint bytes, same window
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if !v.Overlap.Empty() {
		t.Errorf("overlap should be empty: %v", v.Overlap)
	}
	if !strings.Contains(v.Rule, "without overlap") {
		t.Errorf("rule = %q", v.Rule)
	}
}

// A local load at the target vs a remote Get is permitted (Load×Get BOTH);
// vs a remote Put it conflicts only on overlap.
func TestLocalLoadRules(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 80))
	b.Add(0, getEv(1, 0x500, 0, 81))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 82))
	b.Add(1, loc(trace.Event{Kind: trace.KindLoad, Addr: 0x1000, Size: 4}, 83))
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("load vs get must be fine:\n%s", rep)
	}

	b = testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 84))
	b.Add(0, putEv(1, 0x500, 0, 85))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 86))
	b.Add(1, loc(trace.Event{Kind: trace.KindLoad, Addr: 0x1000, Size: 4}, 87))
	rep = analyze(t, b)
	if len(rep.Violations) != 1 {
		t.Errorf("load vs put overlap must conflict:\n%s", rep)
	}

	// Disjoint load vs put: fine.
	b = testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 88))
	b.Add(0, putEv(1, 0x500, 0, 89))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 90))
	b.Add(1, loc(trace.Event{Kind: trace.KindLoad, Addr: 0x1020, Size: 4}, 91))
	rep = analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("disjoint load vs put must be fine:\n%s", rep)
	}
}

// Synchronization separating the operations removes the conflict.
func TestBarrierOrdersConflictAway(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 100))
	b.Add(0, putEv(1, 0x500, 0, 101))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 102))
	b.Barrier()
	b.Add(1, loc(trace.Event{Kind: trace.KindStore, Addr: 0x1000, Size: 4}, 103))
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("barrier-separated ops must not conflict:\n%s", rep)
	}
}

// Same-operation accumulates may overlap; different operations conflict.
func TestAccumulateException(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, accEv(1, 0x500, 0, trace.OpSum, 110))
	b.Add(2, accEv(1, 0x700, 0, trace.OpSum, 112))
	b.Fence(1)
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("same-op accumulates must be exempt:\n%s", rep)
	}

	b = testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, accEv(1, 0x500, 0, trace.OpSum, 113))
	b.Add(2, accEv(1, 0x700, 0, trace.OpProd, 114))
	b.Fence(1)
	rep = analyze(t, b)
	if len(rep.Violations) != 1 {
		t.Errorf("different-op accumulates must conflict:\n%s", rep)
	}
}

// Conflicts fully serialized by exclusive locks are reported as warnings
// (the original lockopts bug, paper §VII-A-2).
func TestExclusiveLockWarning(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 2, Lock: trace.LockExclusive}, 120))
	b.Add(0, putEv(2, 0x500, 0, 121))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 2}, 122))
	b.Add(1, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 2, Lock: trace.LockExclusive}, 123))
	b.Add(1, putEv(2, 0x600, 0, 124))
	b.Add(1, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 2}, 125))
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if v.Severity != SevWarning {
		t.Errorf("severity = %v, want WARNING", v.Severity)
	}
	if len(rep.Warnings()) != 1 || len(rep.Errors()) != 0 {
		t.Error("warning/error split wrong")
	}
}

// Repeated conflicts from the same source lines fold into one violation.
func TestDeduplication(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	for i := 0; i < 5; i++ {
		b.Add(0, putEv(1, 0x500, 0, 130))
		b.Add(0, loc(trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 4}, 131))
		b.Fence(1)
	}
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if v.Count != 5 {
		t.Errorf("count = %d, want 5", v.Count)
	}
}

// The SyncChecker baseline configuration (intra-epoch only) misses
// cross-process errors — the comparison of paper §VII.
func TestIntraOnlyMissesCrossProcess(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 140))
	b.Add(2, putEv(1, 0x700, 0, 142))
	b.Fence(1)
	rep, err := AnalyzeWith(b.Set(), Options{IntraEpoch: true, CrossProcess: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("intra-only must miss the cross-process bug:\n%s", rep)
	}
	// Full analysis finds it.
	rep, err = AnalyzeWith(b.Set(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Errorf("full analysis must find it:\n%s", rep)
	}
}

// Origin-buffer accesses of RMA calls act as local accesses across
// processes: a remote Put hitting window bytes that another rank is
// concurrently using as a Get origin (i.e. writing) conflicts.
func TestRMAOriginAsLocalAccess(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	// Window at every rank covers [0x1000,0x1040).
	b.WinCreate(1, 0x1000, 64)
	// Rank 1 gets from rank 2 INTO its own window memory (origin buffer
	// inside rank 1's window).
	b.Add(1, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 2, Lock: trace.LockShared}, 150))
	b.Add(1, getEv(2, 0x1000, 0, 151))
	b.Add(1, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 2}, 152))
	// Rank 0 concurrently puts into rank 1's window at the same bytes.
	b.Add(0, loc(trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared}, 153))
	b.Add(0, putEv(1, 0x500, 0, 154))
	b.Add(0, loc(trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1}, 155))
	rep := analyze(t, b)
	if len(rep.Violations) != 1 {
		t.Fatalf("violations:\n%s", rep)
	}
	if !strings.Contains(rep.Violations[0].Rule, "Store") && !strings.Contains(rep.Violations[0].Rule, "local") {
		t.Errorf("rule = %q", rep.Violations[0].Rule)
	}
}

// Strided (derived-datatype) footprints: two interleaved vector types that
// never touch the same bytes do not conflict; shifting one by an element
// creates byte overlap and a conflict. Exercises the data-map overlap
// machinery on the cross-process path.
func TestStridedFootprintPrecision(t *testing.T) {
	// User type 100 on each origin rank: 4 elements of 8 bytes, stride 16.
	defType := func(b *testutil.TraceBuilder, rank int32) {
		b.Add(rank, loc(trace.Event{Kind: trace.KindTypeCreate, TypeID: trace.TypeUserBase,
			TypeMap: stridedMap()}, 1))
	}
	stridedPut := func(rank int32, disp uint64, line int32) trace.Event {
		return loc(trace.Event{Kind: trace.KindPut, Win: 1, Target: 2,
			OriginAddr: 0x500, OriginType: trace.TypeFloat64, OriginCount: 4,
			TargetDisp: disp, TargetType: trace.TypeUserBase, TargetCount: 1}, line)
	}

	// Interleaved: rank 0 writes offsets {0,16,32,48}, rank 1 writes
	// {8,24,40,56} — no byte overlaps.
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 128)
	defType(b, 0)
	defType(b, 1)
	b.Fence(1)
	b.Add(0, stridedPut(0, 0, 10))
	b.Add(1, stridedPut(1, 8, 11))
	b.Fence(1)
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("interleaved strided puts flagged:\n%s", rep)
	}

	// Aligned: both write {0,16,32,48} — conflict.
	b = testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 128)
	defType(b, 0)
	defType(b, 1)
	b.Fence(1)
	b.Add(0, stridedPut(0, 0, 20))
	b.Add(1, stridedPut(1, 0, 21))
	b.Fence(1)
	rep = analyze(t, b)
	if len(rep.Errors()) != 1 {
		t.Errorf("aligned strided puts: errors = %d\n%s", len(rep.Errors()), rep)
	}
}

func stridedMap() (dm memory.DataMap) {
	for e := 0; e < 4; e++ {
		dm.Segments = append(dm.Segments, memory.Segment{Disp: uint64(e) * 16, Len: 8})
	}
	dm.Extent = 64
	return dm
}

func TestReportString(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 160))
	b.Add(0, loc(trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 4}, 161))
	b.Fence(1)
	rep := analyze(t, b)
	s := rep.String()
	for _, want := range []string{"1 memory consistency issue", "ERROR", "within-epoch", "app.go:160", "app.go:161"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}

	empty := &Report{}
	if !strings.Contains(empty.String(), "no memory consistency errors") {
		t.Error("empty report text wrong")
	}
}
