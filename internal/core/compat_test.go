package core

import (
	"testing"

	"repro/internal/trace"
)

// TestTableI checks the compatibility matrix against the paper's Table I
// (using the symmetric closure of the published table; see compatTable).
func TestTableI(t *testing.T) {
	want := map[[2]Op]Compat{
		{OpLoad, OpLoad}:   Both,
		{OpLoad, OpStore}:  Both,
		{OpLoad, OpGet}:    Both,
		{OpLoad, OpPut}:    NonOverlap,
		{OpLoad, OpAcc}:    NonOverlap,
		{OpStore, OpStore}: Both,
		{OpStore, OpGet}:   NonOverlap,
		{OpStore, OpPut}:   Error,
		{OpStore, OpAcc}:   Error,
		{OpGet, OpGet}:     Both,
		{OpGet, OpPut}:     NonOverlap,
		{OpGet, OpAcc}:     NonOverlap,
		{OpPut, OpPut}:     NonOverlap,
		{OpPut, OpAcc}:     NonOverlap,
		{OpAcc, OpAcc}:     Both,
	}
	for pair, c := range want {
		if got := Table(pair[0], pair[1]); got != c {
			t.Errorf("Table(%v,%v) = %v, want %v", pair[0], pair[1], got, c)
		}
		if got := Table(pair[1], pair[0]); got != c {
			t.Errorf("Table(%v,%v) = %v, want %v (symmetry)", pair[1], pair[0], got, c)
		}
	}
}

func TestTableSymmetric(t *testing.T) {
	for a := Op(0); a < numOps; a++ {
		for b := Op(0); b < numOps; b++ {
			if Table(a, b) != Table(b, a) {
				t.Errorf("matrix asymmetric at (%v,%v)", a, b)
			}
		}
	}
}

func TestOpOf(t *testing.T) {
	cases := map[trace.Kind]Op{
		trace.KindLoad:       OpLoad,
		trace.KindStore:      OpStore,
		trace.KindGet:        OpGet,
		trace.KindPut:        OpPut,
		trace.KindAccumulate: OpAcc,
	}
	for k, want := range cases {
		got, ok := OpOf(k)
		if !ok || got != want {
			t.Errorf("OpOf(%v) = %v,%v", k, got, ok)
		}
	}
	if _, ok := OpOf(trace.KindBarrier); ok {
		t.Error("Barrier must not classify")
	}
}

func TestAccSameOpException(t *testing.T) {
	mk := func(op trace.AccOp, typ int32) *trace.Event {
		return &trace.Event{Kind: trace.KindAccumulate, AccOp: op, TargetType: typ}
	}
	if !AccSameOpException(mk(trace.OpSum, trace.TypeFloat64), mk(trace.OpSum, trace.TypeFloat64)) {
		t.Error("same-op same-type accumulates must be exempt")
	}
	if AccSameOpException(mk(trace.OpSum, trace.TypeFloat64), mk(trace.OpMax, trace.TypeFloat64)) {
		t.Error("different ops must not be exempt")
	}
	if AccSameOpException(mk(trace.OpSum, trace.TypeFloat64), mk(trace.OpSum, trace.TypeInt32)) {
		t.Error("different types must not be exempt")
	}
	if AccSameOpException(mk(trace.OpReplace, trace.TypeFloat64), mk(trace.OpReplace, trace.TypeFloat64)) {
		t.Error("REPLACE acts like Put and must not be exempt")
	}
	if AccSameOpException(mk(trace.OpSum, trace.TypeUserBase), mk(trace.OpSum, trace.TypeUserBase)) {
		t.Error("derived types must be conservative (not exempt)")
	}
	put := &trace.Event{Kind: trace.KindPut}
	if AccSameOpException(put, mk(trace.OpSum, trace.TypeFloat64)) {
		t.Error("non-accumulate must not be exempt")
	}
}

func TestTableRows(t *testing.T) {
	rows := TableRows()
	if len(rows) != 6 || len(rows[0]) != 6 {
		t.Fatalf("rows shape = %dx%d", len(rows), len(rows[0]))
	}
	if rows[0][1] != "Load" || rows[4][0] != "Put" {
		t.Errorf("header wrong: %v", rows[0])
	}
	if rows[2][4] != "ERROR" { // Store × Put
		t.Errorf("Store×Put cell = %q", rows[2][4])
	}
}
