package core

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"

	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Severity grades a detected consistency violation.
type Severity uint8

const (
	// SevError: conflicting concurrent operations with undefined outcome.
	SevError Severity = iota
	// SevWarning: operations that conflict by the memory model but are
	// serialized by exclusive locks, so the outcome is defined but
	// order-dependent (paper §VII-A-2 reports these as warnings).
	SevWarning
)

func (s Severity) String() string {
	if s == SevWarning {
		return "WARNING"
	}
	return "ERROR"
}

// Class distinguishes the paper's two error classes (§III-C).
type Class uint8

const (
	// WithinEpoch: conflicting operations inside one epoch of one process.
	WithinEpoch Class = iota
	// AcrossProcesses: conflicting operations from different processes.
	AcrossProcesses
)

func (c Class) String() string {
	if c == WithinEpoch {
		return "within-epoch"
	}
	return "across-processes"
}

// Violation is one detected memory consistency error, with the diagnostic
// information the paper reports: the pair of conflicting operations and
// their source locations.
type Violation struct {
	Severity Severity
	Class    Class
	Rule     string // human-readable rule that fired

	A, B trace.Event // copies of the conflicting events

	Win     int32           // window involved (0 if none resolvable)
	Overlap memory.Interval // overlapping bytes; empty for no-overlap rules
	Region  int             // concurrent region index (cross-process only)

	Count int // occurrences folded into this report entry

	// Witness is the happens-before chain left open between A and B: the
	// ordered synchronization and epoch events showing why the pair is
	// unordered (see witness.go). It describes the first recorded
	// instance of the violation; folded duplicates share it. Excluded
	// from key() and Signature().
	Witness []WitnessStep

	// witnessFn lazily builds Witness: detectors attach a closure so the
	// chain is only reconstructed for violations that survive dedup (the
	// add sites sit on the detection hot paths). Resolved by Report.add.
	witnessFn func() []WitnessStep

	// Cached identity strings. Both are pure functions of fields fixed at
	// construction (never of Count), so they are computed once on first
	// use — key() and Signature() sit on the dedup and sort hot paths and
	// used to burn six fmt.Sprintf calls per invocation.
	dedupKey string
	sig      string
}

// key identifies a violation for deduplication: the same pair of source
// locations conflicting by the same rule is reported once with a count.
func (v *Violation) key() string {
	if v.dedupKey == "" {
		a := operandString(&v.A, false)
		b := operandString(&v.B, false)
		if b < a {
			a, b = b, a
		}
		var sb strings.Builder
		sb.Grow(len(a) + len(b) + len(v.Rule) + 16)
		sb.WriteString(a)
		sb.WriteByte('|')
		sb.WriteString(b)
		sb.WriteByte('|')
		sb.WriteString(v.Rule)
		sb.WriteByte('|')
		sb.WriteString(strconv.FormatInt(int64(v.Win), 10))
		v.dedupKey = sb.String()
	}
	return v.dedupKey
}

// presetKey assembles the dedup key from pre-rendered operand strings —
// byte-identical to what key() would build from the events. The shadow
// engine renders each access site's operand string once (site-interned in
// its depot) and presets v.dedupKey at construction, keeping the
// per-violation cost off the hot path. aOp and bOp are operandString
// renderings of v.A and v.B with short=false, in either order.
func presetKey(v *Violation, aOp, bOp string) {
	if bOp < aOp {
		aOp, bOp = bOp, aOp
	}
	var sb strings.Builder
	sb.Grow(len(aOp) + len(bOp) + len(v.Rule) + 16)
	sb.WriteString(aOp)
	sb.WriteByte('|')
	sb.WriteString(bOp)
	sb.WriteByte('|')
	sb.WriteString(v.Rule)
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatInt(int64(v.Win), 10))
	v.dedupKey = sb.String()
}

// Signature returns the violation's canonical identity: severity, class,
// rule, and the sorted pair of conflicting operations (kind, call site,
// routine), plus whether a window was involved. It deliberately excludes
// everything placement- and schedule-dependent — rank IDs, window IDs,
// region indexes, overlap offsets, counts, seeds — so the same program
// bug signs identically whichever ranks it lands on and under whichever
// legal schedule it manifests. The schedule explorer (internal/explore)
// dedups thousands of schedules down to distinct signatures.
func (v *Violation) Signature() string {
	if v.sig == "" {
		a := operandString(&v.A, true)
		b := operandString(&v.B, true)
		if b < a {
			a, b = b, a
		}
		win := "nowin"
		if v.Win != 0 || v.Class == AcrossProcesses {
			win = "win"
		}
		sev, cls := v.Severity.String(), v.Class.String()
		var sb strings.Builder
		sb.Grow(len(sev) + len(cls) + len(v.Rule) + len(a) + len(b) + len(win) + 5)
		sb.WriteString(sev)
		sb.WriteByte('|')
		sb.WriteString(cls)
		sb.WriteByte('|')
		sb.WriteString(v.Rule)
		sb.WriteByte('|')
		sb.WriteString(a)
		sb.WriteByte('|')
		sb.WriteString(b)
		sb.WriteByte('|')
		sb.WriteString(win)
		v.sig = sb.String()
	}
	return v.sig
}

// operandString renders one side of a conflicting pair as
// "<kind>@<file:line>#<func>" in a single builder pass, matching the
// fmt.Sprintf("%s@%s#%s", kind, ev.Loc(), fn) rendering it replaced.
func operandString(ev *trace.Event, short bool) string {
	fn := ev.Func
	if short {
		fn = shortFunc(fn)
	}
	kind := ev.Kind.String()
	var sb strings.Builder
	sb.Grow(len(kind) + len(ev.File) + len(fn) + 16)
	sb.WriteString(kind)
	sb.WriteByte('@')
	if ev.File == "" {
		sb.WriteByte('?')
	} else {
		sb.WriteString(path.Base(ev.File))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(int64(ev.Line), 10))
	}
	sb.WriteByte('#')
	sb.WriteString(fn)
	return sb.String()
}

// Hint suggests a remediation for the violated rule, in the spirit of the
// paper's goal that diagnostics "help programmers locate and fix the bugs".
func (v *Violation) Hint() string {
	r := v.Rule
	switch {
	case strings.Contains(r, "origin buffer of a pending Get"),
		strings.Contains(r, "result buffer of a pending"):
		return "close the epoch (fence, unlock, complete, or an MPI-3 flush) before touching the destination buffer"
	case strings.Contains(r, "origin buffer of a pending"):
		return "delay reuse of the origin buffer until the epoch closes, or complete it early with MPI-3 Win_flush_local"
	case strings.Contains(r, "buffer of") && strings.Contains(r, "overlaps the"):
		return "give concurrent operations in one epoch distinct local buffers"
	case v.Class == WithinEpoch && strings.Contains(r, "target regions"):
		return "split the operations into separate epochs or make the target regions disjoint"
	case strings.Contains(r, "erroneous even without overlap"):
		return "do not store into an exposed window while remote updates may be in flight; separate the accesses with interprocess synchronization"
	case strings.Contains(r, "local") && v.Class == AcrossProcesses:
		return "order the local access against the remote epoch with synchronization (e.g. a barrier after the origin's unlock)"
	case v.Class == AcrossProcesses:
		return "order the conflicting epochs with synchronization, make their target regions disjoint, or use same-operation accumulates"
	}
	return "separate the conflicting operations with MPI synchronization"
}

func (v *Violation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s] %s\n", v.Severity, v.Class, v.Rule)
	fmt.Fprintf(&sb, "  (1) rank %d: %s at %s (%s)\n", v.A.Rank, v.A.Kind, v.A.Loc(), shortFunc(v.A.Func))
	fmt.Fprintf(&sb, "  (2) rank %d: %s at %s (%s)\n", v.B.Rank, v.B.Kind, v.B.Loc(), shortFunc(v.B.Func))
	if !v.Overlap.Empty() {
		fmt.Fprintf(&sb, "  overlapping bytes: %v", v.Overlap)
	} else {
		sb.WriteString("  no byte overlap required by this rule")
	}
	if v.Win != 0 || v.Class == AcrossProcesses {
		fmt.Fprintf(&sb, "; window %d", v.Win)
	}
	if v.Count > 1 {
		fmt.Fprintf(&sb, "; occurred %d times", v.Count)
	}
	if len(v.Witness) > 0 {
		sb.WriteByte('\n')
		sb.WriteString(witnessString(v.Witness))
	}
	fmt.Fprintf(&sb, "\n  hint: %s", v.Hint())
	return sb.String()
}

func shortFunc(f string) string {
	if f == "" {
		return "?"
	}
	if i := strings.LastIndexByte(f, '/'); i >= 0 {
		f = f[i+1:]
	}
	return f
}

// Report is the result of one analysis run.
type Report struct {
	Violations []*Violation

	// Analysis statistics.
	EventsAnalyzed int
	Regions        int
	EpochsChecked  int

	// Stats, when set, is the observability snapshot of the run that
	// produced this report (per-phase wall times, simulator and profiler
	// counters). It is carried through the JSON rendering; the text
	// rendering leaves it to the caller (`mcchecker ... -stats`).
	Stats *obs.Snapshot

	// Degraded lists the degradations behind this report — rank crashes,
	// truncated traces, salvage prefix cuts. Empty for a clean run over
	// complete inputs; non-empty means the report may under-approximate
	// the program's behavior (it covers only the events listed as
	// analyzed).
	Degraded []string
}

// add records a violation, folding duplicates. The first instance of a
// key wins, witness included — in parallel runs the merge happens in
// scope index order, so the surviving instance (and its witness) is the
// one the serial scan would have kept.
func (r *Report) add(index map[string]*Violation, v *Violation) {
	if prev, ok := index[v.key()]; ok {
		prev.Count++
		return
	}
	v.Count = 1
	v.resolveWitness()
	index[v.key()] = v
	r.Violations = append(r.Violations, v)
}

// addCounted folds a violation that already carries a Count (merging
// per-region partial reports produced by parallel analysis).
func (r *Report) addCounted(index map[string]*Violation, v *Violation) {
	if prev, ok := index[v.key()]; ok {
		prev.Count += v.Count
		return
	}
	v.resolveWitness()
	index[v.key()] = v
	r.Violations = append(r.Violations, v)
}

// resolveWitness materializes the lazy witness chain once the violation
// is known to enter a report.
func (v *Violation) resolveWitness() {
	if v.Witness == nil && v.witnessFn != nil {
		v.Witness = v.witnessFn()
	}
	v.witnessFn = nil
}

// Errors returns the violations with Severity == SevError.
func (r *Report) Errors() []*Violation {
	var out []*Violation
	for _, v := range r.Violations {
		if v.Severity == SevError {
			out = append(out, v)
		}
	}
	return out
}

// Warnings returns the violations with Severity == SevWarning.
func (r *Report) Warnings() []*Violation {
	var out []*Violation
	for _, v := range r.Violations {
		if v.Severity == SevWarning {
			out = append(out, v)
		}
	}
	return out
}

// Sort orders violations deterministically: by severity, class, then
// canonical signature, with the rank-sensitive key as the final
// tie-breaker for violations that share a signature (e.g. the same bug on
// two windows).
func (r *Report) Sort() {
	sort.Slice(r.Violations, func(i, j int) bool {
		a, b := r.Violations[i], r.Violations[j]
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if sa, sb := a.Signature(), b.Signature(); sa != sb {
			return sa < sb
		}
		return a.key() < b.key()
	})
}

func (r *Report) String() string {
	var sb strings.Builder
	if len(r.Violations) == 0 {
		sb.WriteString("MC-Checker: no memory consistency errors detected\n")
	} else {
		fmt.Fprintf(&sb, "MC-Checker: %d memory consistency issue(s) detected\n", len(r.Violations))
		for i, v := range r.Violations {
			fmt.Fprintf(&sb, "#%d %s\n", i+1, v)
		}
	}
	fmt.Fprintf(&sb, "analyzed %d events, %d concurrent regions, %d epochs\n",
		r.EventsAnalyzed, r.Regions, r.EpochsChecked)
	if len(r.Degraded) > 0 {
		fmt.Fprintf(&sb, "DEGRADED: this report is partial (%d issue(s) with the inputs):\n", len(r.Degraded))
		for _, d := range r.Degraded {
			fmt.Fprintf(&sb, "  - %s\n", d)
		}
	}
	return sb.String()
}
