package core

import (
	"fmt"
	"strings"

	"repro/internal/dag"
	"repro/internal/obs/tracing"
	"repro/internal/trace"
)

// Violation provenance: the happens-before witness chain. Where the
// detectors report *that* two accesses conflict, the witness reconstructs
// *why* the happens-before path between them is open — the ordered
// synchronization and epoch events between the pair, in the spirit of the
// paper's causal-order reconstruction (§IV-C). The chain is what a user
// reads to decide which synchronization call to add (or move) to close
// the race, and what the Perfetto export lays out as per-rank tracks for
// the violating window.

// WitnessStep is one event on a violation's happens-before witness chain.
type WitnessStep struct {
	// Side attributes the step: 0 = shared synchronization context,
	// 1 = the first conflicting operand's side, 2 = the second's.
	Side byte
	// Role names the step's function on the chain, e.g. "epoch open",
	// "conflicting access (1)", "region close".
	Role string
	// Ev is a copy of the underlying trace event.
	Ev trace.Event
}

func (s WitnessStep) String() string {
	marker := "[sync]"
	switch s.Side {
	case 1:
		marker = " [1]  "
	case 2:
		marker = " [2]  "
	}
	return fmt.Sprintf("%s rank %d seq %d: %s at %s (%s) — %s",
		marker, s.Ev.Rank, s.Ev.Seq, s.Ev.Kind, s.Ev.Loc(), shortFunc(s.Ev.Func), s.Role)
}

// witnessString renders the chain as the indented block String() appends.
func witnessString(steps []WitnessStep) string {
	var sb strings.Builder
	sb.WriteString("  witness (happens-before chain left open):")
	for _, s := range steps {
		sb.WriteString("\n    ")
		sb.WriteString(s.String())
	}
	return sb.String()
}

// addIntra records a within-epoch violation with its witness chain
// attached lazily (built only if the violation survives dedup).
func (a *Analyzer) addIntra(col *collector, e *Epoch, v *Violation) {
	v.witnessFn = a.witnessIntra(e, v)
	col.add(v)
}

// addCross records a cross-process violation with its witness chain
// attached lazily. aEpoch and bEpoch are the operands' epochs, either of
// which may be nil (local accesses belong to no epoch).
func (a *Analyzer) addCross(col *collector, rg dag.Region, aEpoch, bEpoch *Epoch, v *Violation) {
	v.witnessFn = a.witnessCross(rg, aEpoch, bEpoch, v)
	col.add(v)
}

// witnessIntra builds the chain for a within-epoch violation: the epoch's
// opening synchronization, the two conflicting operations in program
// order, and the closing synchronization that would have completed the
// pending operation — the pair is unordered precisely because both sit
// between open and close.
func (a *Analyzer) witnessIntra(e *Epoch, v *Violation) func() []WitnessStep {
	return func() []WitnessStep {
		t := a.m.Set.Traces[e.Rank]
		steps := []WitnessStep{
			{Side: 0, Role: fmt.Sprintf("epoch open (%s)", e.Kind), Ev: t.Events[e.Start]},
			{Side: 1, Role: "conflicting access (1), still pending", Ev: v.A},
			{Side: 2, Role: "conflicting access (2), before the close", Ev: v.B},
		}
		if e.End < int64(len(t.Events)) {
			steps = append(steps, WitnessStep{
				Side: 0, Role: "epoch close — first point ordering the pair", Ev: t.Events[e.End],
			})
		}
		return steps
	}
}

// AddWitnessTracks lays every reported violation's witness chain onto the
// timeline as its own track: one lane per rank, one unit-length span per
// chain step at the step's position, so the Perfetto view shows the
// causal order left open between the two sides rank by rank. No-op when
// either argument is nil.
func AddWitnessTracks(tr *tracing.Recorder, rep *Report) {
	if tr == nil || rep == nil {
		return
	}
	for i, v := range rep.Violations {
		if len(v.Witness) == 0 {
			continue
		}
		track := fmt.Sprintf("violation %d (%s)", i+1, v.Class)
		for j, st := range v.Witness {
			side := "sync"
			switch st.Side {
			case 1:
				side = "first"
			case 2:
				side = "second"
			}
			tr.AddSpanAt(track, fmt.Sprintf("rank %d", st.Ev.Rank),
				fmt.Sprintf("%s — %s", st.Ev.Kind, st.Role), int64(j), 1,
				"side", side,
				"seq", fmt.Sprintf("%d", st.Ev.Seq),
				"loc", st.Ev.Loc())
		}
	}
}

// witnessCross builds the chain for a cross-process violation: the global
// synchronization delimiting the concurrent region, each side's epoch
// opening (when the access belongs to an epoch), the two conflicting
// accesses, and the region-closing synchronization — everything between
// the delimiters is concurrent across ranks, which is exactly why the
// pair is unordered.
func (a *Analyzer) witnessCross(rg dag.Region, aEpoch, bEpoch *Epoch, v *Violation) func() []WitnessStep {
	return func() []WitnessStep {
		var steps []WitnessStep
		ta := a.m.Set.Traces[v.A.Rank]
		tb := a.m.Set.Traces[v.B.Rank]
		if open := rg.Start[v.A.Rank] - 1; open >= 0 {
			steps = append(steps, WitnessStep{
				Side: 0, Role: fmt.Sprintf("region %d opens — ranks unordered past here", rg.Index),
				Ev: ta.Events[open],
			})
		}
		if aEpoch != nil {
			steps = append(steps, WitnessStep{
				Side: 1, Role: fmt.Sprintf("epoch open (%s) on rank %d", aEpoch.Kind, v.A.Rank),
				Ev: ta.Events[aEpoch.Start],
			})
		}
		steps = append(steps, WitnessStep{Side: 1, Role: "conflicting access (1)", Ev: v.A})
		if bEpoch != nil {
			steps = append(steps, WitnessStep{
				Side: 2, Role: fmt.Sprintf("epoch open (%s) on rank %d", bEpoch.Kind, v.B.Rank),
				Ev: tb.Events[bEpoch.Start],
			})
		}
		steps = append(steps, WitnessStep{Side: 2, Role: "conflicting access (2)", Ev: v.B})
		if rg.Index < len(a.d.Regions())-1 {
			if end := rg.End[v.B.Rank] - 1; end >= 0 && end < int64(len(tb.Events)) {
				steps = append(steps, WitnessStep{
					Side: 0, Role: fmt.Sprintf("region %d closes — first global order after the pair", rg.Index),
					Ev: tb.Events[end],
				})
			}
		}
		return steps
	}
}
