package core

import (
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// --- hand-built trace tests for the MPI-3 rules --------------------------

func faoEv(target int32, originAddr, resultAddr uint64, op trace.AccOp, line int32) trace.Event {
	return trace.Event{Kind: trace.KindFetchOp, Win: 1, Target: target, AccOp: op,
		OriginAddr: originAddr, OriginType: trace.TypeInt64, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt64, TargetCount: 1,
		ResultAddr: resultAddr, ResultType: trace.TypeInt64, ResultCount: 1,
		File: "m3.go", Line: line}
}

func lockAllWrap(b *testutil.TraceBuilder, rank int32, line int32, mid ...trace.Event) {
	b.Add(rank, trace.Event{Kind: trace.KindWinLockAll, Win: 1, File: "m3.go", Line: line})
	for _, ev := range mid {
		b.Add(rank, ev)
	}
	b.Add(rank, trace.Event{Kind: trace.KindWinUnlockAll, Win: 1, File: "m3.go", Line: line + 10})
}

// Concurrent same-op Fetch_and_op calls to the same element are atomic:
// no violation (the accumulate-family exception).
func TestFetchOpSameOpAtomic(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	lockAllWrap(b, 0, 10, faoEv(2, 0x500, 0x540, trace.OpSum, 11))
	lockAllWrap(b, 1, 20, faoEv(2, 0x500, 0x540, trace.OpSum, 21))
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("same-op fetch_and_op flagged:\n%s", rep)
	}
}

// Mixed operations conflict (SUM vs PROD), and FetchOp vs plain Put
// conflicts like any update pair.
func TestFetchOpMixedOpsConflict(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	lockAllWrap(b, 0, 10, faoEv(2, 0x500, 0x540, trace.OpSum, 11))
	lockAllWrap(b, 1, 20, faoEv(2, 0x500, 0x540, trace.OpProd, 21))
	rep := analyze(t, b)
	if len(rep.Errors()) != 1 {
		t.Fatalf("mixed-op atomics: errors = %d\n%s", len(rep.Errors()), rep)
	}

	b = testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	lockAllWrap(b, 0, 10, faoEv(2, 0x500, 0x540, trace.OpSum, 11))
	lockAllWrap(b, 1, 20, trace.Event{Kind: trace.KindPut, Win: 1, Target: 2,
		OriginAddr: 0x600, OriginType: trace.TypeInt64, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt64, TargetCount: 1,
		File: "m3.go", Line: 21})
	rep = analyze(t, b)
	if len(rep.Errors()) != 1 {
		t.Fatalf("fetch_and_op vs put: errors = %d\n%s", len(rep.Errors()), rep)
	}
}

// Concurrent CAS to the same element is atomic; CAS vs accumulate is not.
func TestCompareSwapRules(t *testing.T) {
	cas := func(line int32) trace.Event {
		return trace.Event{Kind: trace.KindCompareSwap, Win: 1, Target: 2,
			OriginAddr: 0x500, OriginType: trace.TypeInt64, OriginCount: 1,
			TargetDisp: 0, TargetType: trace.TypeInt64, TargetCount: 1,
			ResultAddr: 0x540, ResultType: trace.TypeInt64, ResultCount: 1,
			File: "m3.go", Line: line}
	}
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	lockAllWrap(b, 0, 10, cas(11))
	lockAllWrap(b, 1, 20, cas(21))
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("CAS vs CAS flagged:\n%s", rep)
	}

	b = testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	lockAllWrap(b, 0, 10, cas(11))
	lockAllWrap(b, 1, 20, faoEv(2, 0x500, 0x540, trace.OpSum, 21))
	rep = analyze(t, b)
	if len(rep.Errors()) != 1 {
		t.Errorf("CAS vs FetchOp: errors = %d\n%s", len(rep.Errors()), rep)
	}
}

// A local load of the result buffer inside the epoch conflicts: the
// fetching atomic delivers the result only at the closing sync.
func TestResultBufferReadInsideEpoch(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLockAll, Win: 1, File: "m3.go", Line: 10})
	b.Add(0, faoEv(1, 0x500, 0x540, trace.OpSum, 11))
	b.Add(0, trace.Event{Kind: trace.KindLoad, Addr: 0x540, Size: 8, File: "m3.go", Line: 12})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlockAll, Win: 1, File: "m3.go", Line: 13})
	rep := analyze(t, b)
	v := onlyViolation(t, rep)
	if v.Class != WithinEpoch || !strings.Contains(v.Rule, "result buffer") {
		t.Errorf("violation = %v", v)
	}
}

// Win_flush completes the operation: accesses after the flush are ordered
// and safe; without the flush they conflict.
func TestFlushOrdersResultAccess(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLockAll, Win: 1, File: "m3.go", Line: 10})
	b.Add(0, faoEv(1, 0x500, 0x540, trace.OpSum, 11))
	b.Add(0, trace.Event{Kind: trace.KindWinFlush, Win: 1, Target: 1, File: "m3.go", Line: 12})
	b.Add(0, trace.Event{Kind: trace.KindLoad, Addr: 0x540, Size: 8, File: "m3.go", Line: 13})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlockAll, Win: 1, File: "m3.go", Line: 14})
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("flushed access flagged:\n%s", rep)
	}
}

// Win_flush_local completes only the local side: origin reuse is fine, but
// target-side conflicts with later operations remain.
func TestFlushLocalSemantics(t *testing.T) {
	// Origin store after flush_local: fine.
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLockAll, Win: 1, File: "m3.go", Line: 10})
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x500, OriginType: trace.TypeInt64, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt64, TargetCount: 1, File: "m3.go", Line: 11})
	b.Add(0, trace.Event{Kind: trace.KindWinFlushLocal, Win: 1, Target: 1, File: "m3.go", Line: 12})
	b.Add(0, trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 8, File: "m3.go", Line: 13})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlockAll, Win: 1, File: "m3.go", Line: 14})
	rep := analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("origin store after flush_local flagged:\n%s", rep)
	}

	// Overlapping Put after flush_local to the same target bytes: still a
	// conflict (target-side completion is not guaranteed).
	b = testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLockAll, Win: 1, File: "m3.go", Line: 20})
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x500, OriginType: trace.TypeInt64, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt64, TargetCount: 1, File: "m3.go", Line: 21})
	b.Add(0, trace.Event{Kind: trace.KindWinFlushLocal, Win: 1, Target: 1, File: "m3.go", Line: 22})
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x600, OriginType: trace.TypeInt64, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt64, TargetCount: 1, File: "m3.go", Line: 23})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlockAll, Win: 1, File: "m3.go", Line: 24})
	rep = analyze(t, b)
	if len(rep.Errors()) != 1 {
		t.Errorf("target overlap after flush_local: errors = %d\n%s", len(rep.Errors()), rep)
	}

	// With a full flush instead, the same pattern is clean.
	b = testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLockAll, Win: 1, File: "m3.go", Line: 30})
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x500, OriginType: trace.TypeInt64, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt64, TargetCount: 1, File: "m3.go", Line: 31})
	b.Add(0, trace.Event{Kind: trace.KindWinFlush, Win: 1, Target: 1, File: "m3.go", Line: 32})
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x600, OriginType: trace.TypeInt64, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt64, TargetCount: 1, File: "m3.go", Line: 33})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlockAll, Win: 1, File: "m3.go", Line: 34})
	rep = analyze(t, b)
	if len(rep.Violations) != 0 {
		t.Errorf("flush-separated puts flagged:\n%s", rep)
	}
}

// --- end-to-end MPI-3 runs through the full pipeline ---------------------

func TestEndToEndAtomicCounterClean(t *testing.T) {
	rep := runAndAnalyze(t, 4, func(p *mpi.Proc) error {
		w, buf := p.WinAllocate(8, 8, p.CommWorld(), "counter")
		if p.Rank() == 0 {
			buf.SetInt64(0, 0)
		}
		p.Barrier(p.CommWorld())
		one := p.Alloc(8, "one")
		one.SetInt64(0, 1)
		old := p.Alloc(8, "old")
		for i := 0; i < 3; i++ {
			w.LockAll()
			w.FetchAndOp(one, 0, old, 0, 0, 0, mpi.Int64, mpi.OpSum)
			w.UnlockAll()
			_ = old.Int64At(0)
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if len(rep.Violations) != 0 {
		t.Errorf("atomic counter flagged:\n%s", rep)
	}
}

func TestEndToEndGetPutCounterRacy(t *testing.T) {
	// The same counter implemented with Get + Put (lost updates): the
	// checker must flag the conflicting accesses.
	rep := runAndAnalyze(t, 4, func(p *mpi.Proc) error {
		w, buf := p.WinAllocate(8, 8, p.CommWorld(), "counter")
		if p.Rank() == 0 {
			buf.SetInt64(0, 0)
		}
		p.Barrier(p.CommWorld())
		old := p.Alloc(8, "old")
		inc := p.Alloc(8, "inc")
		for i := 0; i < 2; i++ {
			w.Lock(mpi.LockShared, 0)
			w.Get(old, 0, 1, mpi.Int64, 0, 0, 1, mpi.Int64)
			w.Unlock(0)
			inc.SetInt64(0, old.Int64At(0)+1)
			w.Lock(mpi.LockShared, 0)
			w.Put(inc, 0, 1, mpi.Int64, 0, 0, 1, mpi.Int64)
			w.Unlock(0)
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if len(rep.Errors()) == 0 {
		t.Errorf("get/put counter not flagged:\n%s", rep)
	}
}
