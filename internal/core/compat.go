package core

import "repro/internal/trace"

// Op is the access class used by the compatibility matrix (paper Table I).
type Op uint8

const (
	OpLoad Op = iota
	OpStore
	OpGet
	OpPut
	OpAcc
	numOps
)

var opNames = [...]string{"Load", "Store", "Get", "Put", "Acc"}

func (o Op) String() string { return opNames[o] }

// OpOf classifies a trace event kind as a matrix access class. The MPI-3
// fetching atomics classify as Acc: they update target memory and enjoy
// the accumulate-family atomicity exception.
func OpOf(k trace.Kind) (Op, bool) {
	switch k {
	case trace.KindLoad:
		return OpLoad, true
	case trace.KindStore:
		return OpStore, true
	case trace.KindGet:
		return OpGet, true
	case trace.KindPut:
		return OpPut, true
	case trace.KindAccumulate, trace.KindGetAccumulate,
		trace.KindFetchOp, trace.KindCompareSwap:
		return OpAcc, true
	}
	return 0, false
}

// Compat is a cell of the compatibility matrix.
type Compat uint8

const (
	// Both: overlapping and non-overlapping combinations are permitted.
	Both Compat = iota
	// NonOverlap: only non-overlapping combinations are permitted.
	NonOverlap
	// Error: the combination is erroneous even without buffer overlap.
	Error
)

var compatNames = [...]string{"BOTH", "NON-OV", "ERROR"}

func (c Compat) String() string { return compatNames[c] }

// compatTable is Table I of the paper, covering concurrent accesses to
// memory exposed in an RMA window. The matrix is symmetric; the published
// table has two asymmetric cells (Load×Acc and Store×Acc) that contradict
// its own lower triangle and the MPI-2.2 rules quoted in the paper's prose
// ("a local store cannot be combined with any MPI_Put or MPI_Accumulate
// even when they do not have any buffer overlap", §IV-C-4); this
// implementation uses the symmetric closure consistent with that prose.
//
// The Acc×Acc entry is BOTH only for accumulates using the same operation
// and basic datatype; the detector applies that exception before consulting
// the table (paper §II-A).
var compatTable = [numOps][numOps]Compat{
	//            Load        Store       Get         Put         Acc
	OpLoad:  {Both /*   */, Both, Both, NonOverlap, NonOverlap},
	OpStore: {Both /*   */, Both, NonOverlap, Error, Error},
	OpGet:   {Both /*   */, NonOverlap, Both, NonOverlap, NonOverlap},
	OpPut:   {NonOverlap, Error, NonOverlap, NonOverlap, NonOverlap},
	OpAcc:   {NonOverlap, Error, NonOverlap, NonOverlap, Both},
}

// Table returns the compatibility matrix cell for two concurrent access
// classes on the same window.
func Table(a, b Op) Compat { return compatTable[a][b] }

// AccSameOpException reports whether two events are accumulate-family
// operations combining with the same operation and the same basic datatype
// — the combination MPI permits to overlap (paper §II-A; extended to the
// MPI-3 fetching atomics, which are elementwise-atomic with each other
// under the same conditions).
func AccSameOpException(a, b *trace.Event) bool {
	if !a.Kind.IsAccFamily() || !b.Kind.IsAccFamily() {
		return false
	}
	// Basic datatype comparison: both target types must resolve to the same
	// predefined type id (derived types built from it compare by id only
	// when predefined; conservative otherwise).
	if a.TargetType != b.TargetType || !trace.IsPredefinedType(a.TargetType) {
		return false
	}
	aCAS := a.Kind == trace.KindCompareSwap
	bCAS := b.Kind == trace.KindCompareSwap
	if aCAS || bCAS {
		return aCAS && bCAS // concurrent CAS to the same element is atomic
	}
	if a.AccOp != b.AccOp {
		return false
	}
	// MPI-2.2 forbids overlapping REPLACE accumulates (they act as puts);
	// the MPI-3 fetching family makes same-op REPLACE atomic (atomic swap).
	if a.AccOp == trace.OpReplace &&
		a.Kind == trace.KindAccumulate && b.Kind == trace.KindAccumulate {
		return false
	}
	return true
}

// EffectiveCompat returns the matrix cell governing two concrete events,
// applying the accumulate exception: Acc×Acc is BOTH only for the same
// operation and basic datatype, and NON-OV otherwise.
func EffectiveCompat(a, b *trace.Event) Compat {
	opA, okA := OpOf(a.Kind)
	opB, okB := OpOf(b.Kind)
	if !okA || !okB {
		return Both
	}
	if opA == OpAcc && opB == OpAcc {
		if AccSameOpException(a, b) {
			return Both
		}
		return NonOverlap
	}
	return Table(opA, opB)
}

// TableRows renders the matrix for reports and the Table I experiment.
func TableRows() [][]string {
	rows := make([][]string, 0, numOps+1)
	header := []string{""}
	for o := Op(0); o < numOps; o++ {
		header = append(header, o.String())
	}
	rows = append(rows, header)
	for a := Op(0); a < numOps; a++ {
		row := []string{a.String()}
		for b := Op(0); b < numOps; b++ {
			row = append(row, Table(a, b).String())
		}
		rows = append(rows, row)
	}
	return rows
}
