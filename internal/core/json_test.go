package core

import (
	"encoding/json"
	"testing"

	"repro/internal/testutil"
	"repro/internal/trace"
)

func TestReportJSON(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 10))
	b.Add(0, loc(trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 4}, 11))
	b.Fence(1)
	rep := analyze(t, b)

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Violations []struct {
			Severity string `json:"severity"`
			Class    string `json:"class"`
			Rule     string `json:"rule"`
			First    struct {
				Rank int32  `json:"rank"`
				Op   string `json:"op"`
				File string `json:"file"`
				Line int32  `json:"line"`
			} `json:"first"`
			Overlap *struct {
				Lo, Hi uint64
			} `json:"overlap"`
			Count int `json:"count"`
		} `json:"violations"`
		Errors int `json:"errors"`
		Epochs int `json:"epochs"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if decoded.Errors != 1 || len(decoded.Violations) != 1 {
		t.Fatalf("decoded = %+v", decoded)
	}
	v := decoded.Violations[0]
	if v.Severity != "ERROR" || v.Class != "within-epoch" || v.First.Op != "Put" {
		t.Errorf("violation json = %+v", v)
	}
	if v.First.File != "app.go" || v.First.Line != 10 {
		t.Errorf("location json = %+v", v.First)
	}
	if v.Overlap == nil || v.Overlap.Hi-v.Overlap.Lo != 4 {
		t.Errorf("overlap json = %+v", v.Overlap)
	}
	if v.Count != 1 {
		t.Errorf("count = %d", v.Count)
	}

	// Empty report serializes with an empty array, not null.
	empty := &Report{}
	data, err = empty.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["violations"].([]any); !ok {
		t.Errorf("violations must be an array: %s", data)
	}
}
