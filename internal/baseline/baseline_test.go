package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func putEv(target int32, originAddr uint64, disp uint64, line int32) trace.Event {
	return trace.Event{Kind: trace.KindPut, Win: 1, Target: target,
		OriginAddr: originAddr, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: disp, TargetType: trace.TypeInt32, TargetCount: 1,
		File: "app.go", Line: line}
}

// buggySet builds a trace with one cross-process conflict (Fig 2b) and one
// within-epoch conflict (Fig 2a).
func buggySet(t *testing.T) *trace.Set {
	t.Helper()
	b := testutil.NewTraceBuilder(3)
	b.WinCreate(1, 0x1000, 64)
	b.Fence(1)
	b.Add(0, putEv(1, 0x500, 0, 10))
	b.Add(0, trace.Event{Kind: trace.KindStore, Addr: 0x500, Size: 4, File: "app.go", Line: 11})
	b.Add(2, putEv(1, 0x700, 0, 12))
	b.Fence(1)
	return b.Set()
}

func TestSyncCheckerMissesCrossProcess(t *testing.T) {
	set := buggySet(t)
	rep, err := SyncCheckerAnalyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("synccheck violations = %d:\n%s", len(rep.Violations), rep)
	}
	if rep.Violations[0].Class != core.WithinEpoch {
		t.Errorf("synccheck found %v", rep.Violations[0].Class)
	}

	full, err := core.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Violations) != 2 {
		t.Fatalf("full violations = %d:\n%s", len(full.Violations), full)
	}
}

// The quadratic detector must agree with the linear cross-process detector.
func TestQuadraticMatchesLinear(t *testing.T) {
	set := buggySet(t)
	quad, err := QuadraticAnalyze(set)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := core.AnalyzeWith(set, core.Options{CrossProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(quad.Violations) != len(lin.Violations) {
		t.Fatalf("quadratic found %d, linear found %d:\nquad:\n%s\nlin:\n%s",
			len(quad.Violations), len(lin.Violations), quad, lin)
	}
	for i := range quad.Violations {
		q, l := quad.Violations[i], lin.Violations[i]
		if q.Rule != l.Rule || q.Severity != l.Severity || q.A.Loc() != l.A.Loc() || q.B.Loc() != l.B.Loc() {
			t.Errorf("violation %d differs:\nquad: %v\nlin:  %v", i, q, l)
		}
	}
}

func TestQuadraticMatchesLinearOnManyRandomOps(t *testing.T) {
	// A denser scenario: several origins putting/getting at varied
	// displacements plus local accesses at targets.
	b := testutil.NewTraceBuilder(4)
	b.WinCreate(1, 0x1000, 256)
	b.Fence(1)
	line := int32(100)
	for origin := int32(0); origin < 4; origin++ {
		for k := uint64(0); k < 5; k++ {
			disp := (uint64(origin)*16 + k*8) % 64
			ev := putEv(3, 0x500+16*k, disp, line)
			if k%2 == 1 {
				ev.Kind = trace.KindGet
			}
			if origin != 3 {
				b.Add(origin, ev)
			}
			line++
		}
	}
	b.Add(3, trace.Event{Kind: trace.KindStore, Addr: 0x1008, Size: 4, File: "app.go", Line: line})
	b.Fence(1)
	set := b.Set()

	quad, err := QuadraticAnalyze(set)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := core.AnalyzeWith(set, core.Options{CrossProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(quad.Violations) != len(lin.Violations) {
		t.Fatalf("quadratic %d vs linear %d violations", len(quad.Violations), len(lin.Violations))
	}
	if len(quad.Violations) == 0 {
		t.Fatal("scenario should produce conflicts")
	}
	for i := range quad.Violations {
		if quad.Violations[i].Rule != lin.Violations[i].Rule {
			t.Errorf("rule %d: %q vs %q", i, quad.Violations[i].Rule, lin.Violations[i].Rule)
		}
	}
}
