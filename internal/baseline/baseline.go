// Package baseline implements the comparison points of the paper's
// evaluation:
//
//   - Quadratic: the "straightforward method" of §IV-C-4 that examines
//     every pair of operations in a concurrent region against the
//     compatibility table. Its results match the linear detector; its cost
//     is combinatorial in the region size. It exists for the ablation
//     benchmark demonstrating why MC-Checker's per-target-window vectors
//     matter.
//
//   - SyncChecker: the related tool of §VII that detects only errors
//     occurring within an epoch, missing conflicts across processes.
package baseline

import (
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/trace"
)

// SyncCheckerAnalyze runs intra-epoch-only detection, reproducing
// SyncChecker's coverage (paper §VII: "it cannot detect memory consistency
// errors across processes").
func SyncCheckerAnalyze(set *trace.Set) (*core.Report, error) {
	return core.AnalyzeWith(set, core.Options{IntraEpoch: true, CrossProcess: false})
}

// QuadraticAnalyze detects cross-process conflicts by checking every pair
// of operations in every concurrent region. It reports the same conflicts
// as the linear detector (deduplicated identically) but runs in time
// combinatorial in the number of operations per region.
func QuadraticAnalyze(set *trace.Set) (*core.Report, error) {
	m, err := model.Build(set)
	if err != nil {
		return nil, err
	}
	ms, err := match.Run(m)
	if err != nil {
		return nil, err
	}
	d, err := dag.Build(m, ms)
	if err != nil {
		return nil, err
	}
	return core.QuadraticCrossProcess(m, d)
}
