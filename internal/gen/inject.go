package gen

import (
	"fmt"
	"math/rand"
)

// Pattern is one planted-bug mutation: a minimal edit of a clean
// generated program that introduces a known MPI-RMA consistency error.
type Pattern struct {
	// Name identifies the pattern in the detection matrix.
	Name string
	// Across is true when the planted conflict crosses processes
	// (expected core.AcrossProcesses); false for within-epoch bugs.
	Across bool
	// Doc is the literature pattern this mutation models.
	Doc string

	apply func(pr *Program, rng *rand.Rand) bool
}

// site is one candidate operation for a mutation.
type site struct {
	phase int
	op    int
}

func findSites(pr *Program, pred func(ph *Phase, op *RMAOp) bool) []site {
	var out []site
	for pi := range pr.Phases {
		ph := &pr.Phases[pi]
		for oi := range ph.Ops {
			if pred(ph, &ph.Ops[oi]) {
				out = append(out, site{pi, oi})
			}
		}
	}
	return out
}

func pick(rng *rand.Rand, sites []site) (site, bool) {
	if len(sites) == 0 {
		return site{}, false
	}
	return sites[rng.Intn(len(sites))], true
}

// otherIssuer returns an issuing rank of the phase other than origin
// (and, when possible, other than avoid), for planting a second
// conflicting operation.
func otherIssuer(ph *Phase, ranks, origin, avoid int) (int, bool) {
	candidates := func(skipAvoid bool) (int, bool) {
		if ph.Kind == PhasePSCW {
			for _, r := range ph.PSCWOrigins {
				if r != origin && (!skipAvoid || r != avoid) {
					return r, true
				}
			}
			return 0, false
		}
		for r := 0; r < ranks; r++ {
			if r != origin && (!skipAvoid || r != avoid) {
				return r, true
			}
		}
		return 0, false
	}
	if r, ok := candidates(true); ok {
		return r, true
	}
	return candidates(false)
}

// patterns is the bug catalog. Every entry's apply is total over
// Generate's structural guarantees (it can still return false on
// hand-built programs that lack the required site).
var patterns = []Pattern{
	{
		Name:   "get-origin-use",
		Across: false,
		Doc:    "origin buffer of a pending Get read before the epoch completes it",
		apply: func(pr *Program, rng *rand.Rand) bool {
			s, ok := pick(rng, findSites(pr, func(ph *Phase, op *RMAOp) bool {
				return op.Kind == OpGet && !op.Strided && ph.Kind != PhaseLockAll
			}))
			if !ok {
				return false
			}
			op := pr.Phases[s.phase].Ops[s.op]
			pr.Phases[s.phase].In = append(pr.Phases[s.phase].In,
				LocalOp{Rank: op.Origin, Buf: BufOrigin, Word: op.Slot})
			return true
		},
	},
	{
		Name:   "put-origin-store",
		Across: false,
		Doc:    "origin buffer of a pending Put overwritten before the epoch completes it",
		apply: func(pr *Program, rng *rand.Rand) bool {
			s, ok := pick(rng, findSites(pr, func(ph *Phase, op *RMAOp) bool {
				return op.Kind == OpPut && !op.Strided && ph.Kind != PhaseLockAll
			}))
			if !ok {
				return false
			}
			op := pr.Phases[s.phase].Ops[s.op]
			pr.Phases[s.phase].In = append(pr.Phases[s.phase].In,
				LocalOp{Rank: op.Origin, Store: true, Buf: BufOrigin, Word: op.Slot})
			return true
		},
	},
	{
		Name:   "epoch-target-overlap",
		Across: false,
		Doc:    "two operations of one epoch update overlapping target regions",
		apply: func(pr *Program, rng *rand.Rand) bool {
			sites := findSites(pr, func(ph *Phase, op *RMAOp) bool {
				if op.Kind != OpPut || op.Strided {
					return false
				}
				_, free := pr.freeSlot(sliceIndex(pr, ph), op.Origin)
				return free
			})
			s, ok := pick(rng, sites)
			if !ok {
				return false
			}
			op := pr.Phases[s.phase].Ops[s.op]
			slot, _ := pr.freeSlot(s.phase, op.Origin)
			pr.Phases[s.phase].Ops = append(pr.Phases[s.phase].Ops, RMAOp{
				Kind: OpPut, Origin: op.Origin, Target: op.Target,
				Word: op.Word, Slot: slot,
			})
			stageOrigin(pr, s.phase, op.Origin, slot, false)
			return true
		},
	},
	{
		Name:   "cross-target-race",
		Across: true,
		Doc:    "two processes update the same target window region in one concurrent region",
		apply: func(pr *Program, rng *rand.Rand) bool {
			type cand struct {
				s      site
				origin int
				slot   int
			}
			var cands []cand
			for _, s := range findSites(pr, func(ph *Phase, op *RMAOp) bool {
				return op.Kind == OpPut && !op.Strided
			}) {
				ph := &pr.Phases[s.phase]
				op := ph.Ops[s.op]
				o, ok := otherIssuer(ph, pr.Ranks, op.Origin, op.Target)
				if !ok {
					continue
				}
				slot, free := pr.freeSlot(s.phase, o)
				if !free {
					continue
				}
				cands = append(cands, cand{s, o, slot})
			}
			if len(cands) == 0 {
				return false
			}
			c := cands[rng.Intn(len(cands))]
			op := pr.Phases[c.s.phase].Ops[c.s.op]
			pr.Phases[c.s.phase].Ops = append(pr.Phases[c.s.phase].Ops, RMAOp{
				Kind: OpPut, Origin: c.origin, Target: op.Target,
				Word: op.Word, Slot: c.slot,
			})
			stageOrigin(pr, c.s.phase, c.origin, c.slot, false)
			return true
		},
	},
	{
		Name:   "cross-local-store",
		Across: true,
		Doc:    "target process stores to its window while a remote update is in flight (MPI-2.2 store rule)",
		apply: func(pr *Program, rng *rand.Rand) bool {
			s, ok := pick(rng, findSites(pr, func(ph *Phase, op *RMAOp) bool {
				return !op.Strided
			}))
			if !ok {
				return false
			}
			op := pr.Phases[s.phase].Ops[s.op]
			pr.Phases[s.phase].In = append(pr.Phases[s.phase].In,
				LocalOp{Rank: op.Target, Store: true, Buf: BufWindow, Word: op.Word})
			return true
		},
	},
	{
		Name:   "exposure-access",
		Across: true,
		Doc:    "PSCW target touches exposed memory between Post and Wait",
		apply: func(pr *Program, rng *rand.Rand) bool {
			s, ok := pick(rng, findSites(pr, func(ph *Phase, op *RMAOp) bool {
				return ph.Kind == PhasePSCW && !op.Strided
			}))
			if !ok {
				return false
			}
			ph := &pr.Phases[s.phase]
			op := ph.Ops[s.op]
			ph.In = append(ph.In,
				LocalOp{Rank: ph.PSCWTarget, Store: true, Buf: BufWindow, Word: op.Word})
			return true
		},
	},
	{
		Name:   "lockall-flush-misuse",
		Across: false,
		Doc:    "lock-all epoch reads a Get's origin buffer without an intervening flush-all",
		apply: func(pr *Program, rng *rand.Rand) bool {
			s, ok := pick(rng, findSites(pr, func(ph *Phase, op *RMAOp) bool {
				return ph.Kind == PhaseLockAll && op.Kind == OpGet && !op.Strided
			}))
			if !ok {
				return false
			}
			ph := &pr.Phases[s.phase]
			op := ph.Ops[s.op]
			ph.FlushAll = false
			ph.In = append(ph.In, LocalOp{Rank: op.Origin, Buf: BufOrigin, Word: op.Slot})
			return true
		},
	},
	{
		Name:   "strided-overlap",
		Across: false,
		Doc:    "derived-datatype footprints of two operations overlap in the target window",
		apply: func(pr *Program, rng *rand.Rand) bool {
			sites := findSites(pr, func(ph *Phase, op *RMAOp) bool {
				if !op.Strided {
					return false
				}
				_, free := pr.freeSlot(sliceIndex(pr, ph), op.Origin)
				return free
			})
			s, ok := pick(rng, sites)
			if !ok {
				return false
			}
			op := pr.Phases[s.phase].Ops[s.op]
			slot, _ := pr.freeSlot(s.phase, op.Origin)
			pr.Phases[s.phase].Ops = append(pr.Phases[s.phase].Ops, RMAOp{
				Kind: OpPut, Origin: op.Origin, Target: op.Target,
				Word: op.Word, Slot: slot, Strided: true,
			})
			stageOrigin(pr, s.phase, op.Origin, slot, true)
			return true
		},
	},
	{
		Name:   "acc-put-race",
		Across: true,
		Doc:    "atomic Accumulate races a plain Put on the same target region",
		apply: func(pr *Program, rng *rand.Rand) bool {
			type cand struct {
				s      site
				origin int
				slot   int
			}
			var cands []cand
			for _, s := range findSites(pr, func(ph *Phase, op *RMAOp) bool {
				return op.Kind == OpAcc
			}) {
				ph := &pr.Phases[s.phase]
				op := ph.Ops[s.op]
				o, ok := otherIssuer(ph, pr.Ranks, op.Origin, op.Target)
				if !ok {
					continue
				}
				slot, free := pr.freeSlot(s.phase, o)
				if !free {
					continue
				}
				cands = append(cands, cand{s, o, slot})
			}
			if len(cands) == 0 {
				return false
			}
			c := cands[rng.Intn(len(cands))]
			op := pr.Phases[c.s.phase].Ops[c.s.op]
			pr.Phases[c.s.phase].Ops = append(pr.Phases[c.s.phase].Ops, RMAOp{
				Kind: OpPut, Origin: c.origin, Target: op.Target,
				Word: op.Word, Slot: c.slot,
			})
			stageOrigin(pr, c.s.phase, c.origin, c.slot, false)
			return true
		},
	},
}

// stageOrigin appends the Pre staging store(s) for an injected op so the
// mutated program stays well-formed outside the planted conflict.
func stageOrigin(pr *Program, phase, origin, slot int, strided bool) {
	ph := &pr.Phases[phase]
	if strided {
		ph.Pre = append(ph.Pre,
			LocalOp{Rank: origin, Store: true, Buf: BufOriginV, Word: slot * 4},
			LocalOp{Rank: origin, Store: true, Buf: BufOriginV, Word: slot*4 + 2})
		return
	}
	ph.Pre = append(ph.Pre, LocalOp{Rank: origin, Store: true, Buf: BufOrigin, Word: slot})
}

func sliceIndex(pr *Program, ph *Phase) int {
	for i := range pr.Phases {
		if &pr.Phases[i] == ph {
			return i
		}
	}
	return -1
}

// Patterns returns the bug catalog (shared backing array; callers must
// not mutate).
func Patterns() []Pattern { return patterns }

// PatternNames lists the catalog in declaration order.
func PatternNames() []string {
	names := make([]string, len(patterns))
	for i, p := range patterns {
		names[i] = p.Name
	}
	return names
}

// Inject clones base and plants the named pattern, choosing the mutation
// site deterministically from seed. It fails if the pattern is unknown
// or base has no applicable site.
func Inject(base *Program, pattern string, seed uint64) (*Program, error) {
	for _, p := range patterns {
		if p.Name != pattern {
			continue
		}
		pr := base.Clone()
		rng := rand.New(rand.NewSource(int64(seed)))
		if !p.apply(pr, rng) {
			return nil, fmt.Errorf("gen: pattern %q has no applicable site in program seed=%d", pattern, base.Seed)
		}
		pr.Injected = p.Name
		pr.ExpectAcross = p.Across
		return pr, nil
	}
	return nil, fmt.Errorf("gen: unknown pattern %q (have %v)", pattern, PatternNames())
}
