package gen

import (
	"math/rand"
)

// Options bounds a generated program. Zero values pick defaults sized
// for fast corpus runs.
type Options struct {
	Ranks  int // world size (default 3, min 2)
	Slots  int // staging slots per rank (default 4, min 2)
	Phases int // phase count (default 6, min 4 — one per epoch kind)
}

func (o Options) withDefaults() Options {
	if o.Ranks == 0 {
		o.Ranks = 3
	}
	if o.Ranks < 2 {
		o.Ranks = 2
	}
	if o.Slots == 0 {
		o.Slots = 4
	}
	if o.Slots < 3 {
		o.Slots = 3 // room for the forced ops plus a free injection slot
	}
	if o.Phases < 4 {
		o.Phases = 4
	}
	return o
}

// Generate builds a clean program, deterministic in seed. Cleanliness is
// by construction:
//
//   - every RMA operation targets the window words owned by its (origin,
//     slot) pair, and no (origin, slot) pair is reused within a phase, so
//     target footprints never overlap;
//   - staging buffers are written before the epoch opens and read after
//     it closes (or, under lock-all, after a completing flush-all);
//   - inside open epochs ranks touch only private scratch;
//   - a rank stores to its own window only in phases where no remote
//     operation targets that window, honoring the MPI-2.2 rule that a
//     local store concurrent with a remote update is erroneous even
//     without byte overlap; window loads stay on the never-targeted
//     local tail.
//
// Structural guarantees injectors rely on: at least one phase of every
// kind; every phase's first two operations are a contiguous Put and a
// contiguous Get; the first fence phase also carries an Accumulate and a
// strided Put; lock-all phases flush; the top slot of every (phase,
// origin) is left free.
func Generate(seed uint64, opts Options) *Program {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(int64(seed)))
	pr := &Program{Seed: seed, Ranks: opts.Ranks, Slots: opts.Slots}

	kinds := make([]PhaseKind, 0, opts.Phases)
	base := []PhaseKind{PhaseFence, PhaseLock, PhaseLockAll, PhasePSCW}
	for _, i := range rng.Perm(4) {
		kinds = append(kinds, base[i])
	}
	for len(kinds) < opts.Phases {
		kinds = append(kinds, base[rng.Intn(4)])
	}

	firstFence := -1
	for pi, k := range kinds {
		if k == PhaseFence {
			firstFence = pi
			break
		}
	}

	for pi, k := range kinds {
		ph := Phase{Kind: k}
		if k == PhaseLockAll {
			ph.FlushAll = true
		}

		// Participants: ranks allowed to issue operations this phase.
		issuers := make([]int, 0, pr.Ranks)
		if k == PhasePSCW {
			ph.PSCWTarget = rng.Intn(pr.Ranks)
			for r := 0; r < pr.Ranks; r++ {
				if r != ph.PSCWTarget {
					ph.PSCWOrigins = append(ph.PSCWOrigins, r)
					issuers = append(issuers, r)
				}
			}
		} else {
			for r := 0; r < pr.Ranks; r++ {
				issuers = append(issuers, r)
			}
		}

		next := make([]int, pr.Ranks) // next free slot per origin
		addOp := func(origin int, kind OpKind, strided bool) {
			slot := next[origin]
			if slot >= pr.Slots-1 {
				return // keep the top slot free for injection
			}
			next[origin]++
			target := ph.PSCWTarget
			if k != PhasePSCW {
				target = rng.Intn(pr.Ranks - 1)
				if target >= origin {
					target++
				}
			}
			word := pr.ContigWord(origin, slot)
			if strided {
				word = pr.StridedWord(origin, slot)
			}
			ph.Ops = append(ph.Ops, RMAOp{
				Kind: kind, Origin: origin, Target: target,
				Word: word, Slot: slot, Strided: strided,
			})
		}

		// Forced injection sites: a contiguous Put and Get in every phase,
		// from distinct origins so both fit even at minimal slot counts.
		putOrigin := issuers[rng.Intn(len(issuers))]
		others := make([]int, 0, len(issuers))
		for _, r := range issuers {
			if r != putOrigin {
				others = append(others, r)
			}
		}
		getOrigin := putOrigin
		if len(others) > 0 {
			getOrigin = others[rng.Intn(len(others))]
		}
		addOp(putOrigin, OpPut, false)
		addOp(getOrigin, OpGet, false)
		// The first fence phase additionally carries an Accumulate (for
		// the mixed-atomicity race) and a strided Put (for the datatype
		// footprint overlap), placed on origins that still have capacity.
		withCapacity := func() (int, bool) {
			free := make([]int, 0, len(issuers))
			for _, r := range issuers {
				if next[r] < pr.Slots-1 {
					free = append(free, r)
				}
			}
			if len(free) == 0 {
				return 0, false
			}
			return free[rng.Intn(len(free))], true
		}
		if pi == firstFence {
			if r, ok := withCapacity(); ok {
				addOp(r, OpAcc, false)
			}
			if r, ok := withCapacity(); ok {
				addOp(r, OpPut, true)
			}
		}
		// Random body.
		menu := []OpKind{OpPut, OpGet, OpAcc, OpFetchOp, OpGetAcc}
		for _, origin := range issuers {
			n := rng.Intn(pr.Slots - 1)
			for i := 0; i < n; i++ {
				kind := menu[rng.Intn(len(menu))]
				strided := (kind == OpPut || kind == OpGet) && rng.Intn(4) == 0
				addOp(origin, kind, strided)
			}
		}

		// Locals. Pre: stage every origin slot; sprinkle scratch.
		targeted := make([]bool, pr.Ranks)
		for _, op := range ph.Ops {
			targeted[op.Target] = true
			if op.Strided {
				ph.Pre = append(ph.Pre,
					LocalOp{Rank: op.Origin, Store: true, Buf: BufOriginV, Word: op.Slot * 4},
					LocalOp{Rank: op.Origin, Store: true, Buf: BufOriginV, Word: op.Slot*4 + 2})
			} else {
				ph.Pre = append(ph.Pre, LocalOp{Rank: op.Origin, Store: true, Buf: BufOrigin, Word: op.Slot})
			}
		}
		for r := 0; r < pr.Ranks; r++ {
			if rng.Intn(2) == 0 {
				ph.Pre = append(ph.Pre, LocalOp{Rank: r, Store: true, Buf: BufScratch, Word: rng.Intn(pr.Slots)})
			}
			// In: private scratch only — every epoch shape leaves these
			// racing with nothing.
			if rng.Intn(2) == 0 {
				ph.In = append(ph.In, LocalOp{Rank: r, Store: rng.Intn(2) == 0, Buf: BufScratch, Word: rng.Intn(pr.Slots)})
			}
		}
		// Under lock-all the flush-all completes the transfers, so the
		// epoch may legally read its staging buffers before unlocking.
		if k == PhaseLockAll && ph.FlushAll {
			for _, op := range ph.Ops {
				if op.Kind == OpGet && !op.Strided {
					ph.In = append(ph.In, LocalOp{Rank: op.Origin, Buf: BufOrigin, Word: op.Slot})
				}
				if op.Kind == OpFetchOp || op.Kind == OpGetAcc {
					ph.In = append(ph.In, LocalOp{Rank: op.Origin, Buf: BufResult, Word: op.Slot})
				}
			}
		}
		// Post: harvest results; window tail loads are always safe, tail
		// stores only on ranks whose window saw no remote traffic.
		for _, op := range ph.Ops {
			switch {
			case op.Kind == OpGet && op.Strided:
				ph.Post = append(ph.Post, LocalOp{Rank: op.Origin, Buf: BufOriginV, Word: op.Slot * 4})
			case op.Kind == OpGet:
				ph.Post = append(ph.Post, LocalOp{Rank: op.Origin, Buf: BufOrigin, Word: op.Slot})
			case op.Kind == OpFetchOp || op.Kind == OpGetAcc:
				ph.Post = append(ph.Post, LocalOp{Rank: op.Origin, Buf: BufResult, Word: op.Slot})
			}
		}
		for r := 0; r < pr.Ranks; r++ {
			slot := rng.Intn(pr.Slots)
			if rng.Intn(2) == 0 {
				ph.Post = append(ph.Post, LocalOp{Rank: r, Buf: BufWindow, Word: pr.LocalWord(slot)})
			}
			if !targeted[r] && rng.Intn(2) == 0 {
				ph.Post = append(ph.Post, LocalOp{Rank: r, Store: true, Buf: BufWindow, Word: pr.LocalWord(slot)})
			}
		}

		pr.Phases = append(pr.Phases, ph)
	}
	return pr
}

// Clone deep-copies the program so injectors can mutate freely.
func (pr *Program) Clone() *Program {
	cp := *pr
	cp.Phases = make([]Phase, len(pr.Phases))
	for i := range pr.Phases {
		ph := pr.Phases[i]
		ph.Ops = append([]RMAOp(nil), ph.Ops...)
		ph.Pre = append([]LocalOp(nil), ph.Pre...)
		ph.In = append([]LocalOp(nil), ph.In...)
		ph.Post = append([]LocalOp(nil), ph.Post...)
		ph.PSCWOrigins = append([]int(nil), ph.PSCWOrigins...)
		cp.Phases[i] = ph
	}
	return &cp
}

// freeSlot returns an unused (phase, origin) staging slot. The generator
// keeps the top slot of every origin free, so this never fails on
// generated programs.
func (pr *Program) freeSlot(phase, origin int) (int, bool) {
	used := make([]bool, pr.Slots)
	for _, op := range pr.Phases[phase].Ops {
		if op.Origin == origin {
			used[op.Slot] = true
		}
	}
	for s := pr.Slots - 1; s >= 0; s-- {
		if !used[s] {
			return s, true
		}
	}
	return 0, false
}
