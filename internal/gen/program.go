package gen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mpi"
)

// OpKind classifies a one-sided operation in the IR.
type OpKind uint8

const (
	OpPut OpKind = iota
	OpGet
	OpAcc     // Accumulate with OpSum
	OpFetchOp // Fetch_and_op with OpSum
	OpGetAcc  // Get_accumulate with OpSum
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "Put"
	case OpGet:
		return "Get"
	case OpAcc:
		return "Accumulate"
	case OpFetchOp:
		return "FetchAndOp"
	case OpGetAcc:
		return "GetAccumulate"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// RMAOp is one one-sided operation issued inside a phase's epoch.
type RMAOp struct {
	Kind   OpKind
	Origin int // issuing rank
	Target int // target rank
	// Word addresses the target window. For contiguous operations it is
	// the float64 word index; for strided operations it is the base word
	// of a 2-element vector footprint covering Word and Word+2.
	Word int
	// Slot selects the origin (and, for fetching atomics, result) staging
	// word. Distinct per (phase, origin) in clean programs.
	Slot    int
	Strided bool // Put/Get only: vector datatype footprint
}

// LocalBuf names the buffer a LocalOp touches.
type LocalBuf uint8

const (
	// BufScratch is a private, never-communicated buffer: always safe.
	BufScratch LocalBuf = iota
	// BufWindow is the rank's own window buffer at an absolute word index.
	BufWindow
	// BufOrigin is the contiguous origin staging buffer, indexed by slot.
	BufOrigin
	// BufOriginV is the strided origin staging buffer, indexed by word.
	BufOriginV
	// BufResult is the fetching-atomic result buffer, indexed by slot.
	BufResult
)

func (b LocalBuf) String() string {
	switch b {
	case BufScratch:
		return "scratch"
	case BufWindow:
		return "window"
	case BufOrigin:
		return "origin"
	case BufOriginV:
		return "originv"
	case BufResult:
		return "result"
	}
	return fmt.Sprintf("LocalBuf(%d)", uint8(b))
}

// LocalOp is a plain load or store executed by one rank.
type LocalOp struct {
	Rank  int
	Store bool
	Buf   LocalBuf
	Word  int // word index within Buf
}

// PhaseKind selects the epoch shape of a phase.
type PhaseKind uint8

const (
	PhaseFence PhaseKind = iota
	PhaseLock            // per-target shared locks
	PhaseLockAll
	PhasePSCW
)

func (k PhaseKind) String() string {
	switch k {
	case PhaseFence:
		return "fence"
	case PhaseLock:
		return "lock"
	case PhaseLockAll:
		return "lock-all"
	case PhasePSCW:
		return "pscw"
	}
	return fmt.Sprintf("PhaseKind(%d)", uint8(k))
}

// Phase is one epoch block: local preparation, an epoch issuing RMA
// operations, local operations inside the open epoch, then local
// operations after the epoch closes. Every phase ends with a world
// barrier, so consecutive phases are separate concurrent regions.
type Phase struct {
	Kind PhaseKind
	Ops  []RMAOp
	Pre  []LocalOp // before the epoch opens
	In   []LocalOp // while the epoch is open (after issuing, before close)
	Post []LocalOp // after the epoch closes, before the phase barrier

	// FlushAll (PhaseLockAll only): issue Win_flush_all after the
	// operations and before the In accesses, completing the transfers so
	// that In reads of origin/result staging are legal. Clearing it is
	// the lock-all/flush-misuse injection.
	FlushAll bool

	// PSCW roles (PhasePSCW only): Target exposes its window to Origins;
	// every origin opens an access epoch to Target alone.
	PSCWTarget  int
	PSCWOrigins []int
}

// Program is a generated RMA program: an executable IR deterministic in
// the seed that produced it.
type Program struct {
	Seed  uint64
	Ranks int
	// Slots is the per-rank staging width: the maximum number of RMA
	// operations one rank issues in one phase.
	Slots  int
	Phases []Phase

	// Injected names the bug pattern planted into this program ("" =
	// clean), and ExpectClass / ExpectAcross describe the expected
	// dynamic detection.
	Injected     string
	ExpectAcross bool // true: across-processes; false: within an epoch
}

// Window geometry, in float64 words. The window has three disjoint
// regions: a contiguous region owned one word per (origin, slot), a
// strided region owned four words per (origin, slot) of which a vector
// op touches words base and base+2, and a local tail only ever accessed
// by the owning rank.
func (pr *Program) contigWords() int  { return pr.Ranks * pr.Slots }
func (pr *Program) stridedBase() int  { return pr.contigWords() }
func (pr *Program) stridedWords() int { return pr.Ranks * pr.Slots * 4 }
func (pr *Program) localBase() int    { return pr.contigWords() + pr.stridedWords() }

// WinWords is the per-rank window size in float64 words.
func (pr *Program) WinWords() int { return pr.localBase() + pr.Slots }

// ContigWord returns the contiguous-region word owned by (origin, slot).
func (pr *Program) ContigWord(origin, slot int) int { return origin*pr.Slots + slot }

// StridedWord returns the strided-region base word owned by (origin,
// slot); the vector footprint covers it and StridedWord+2.
func (pr *Program) StridedWord(origin, slot int) int {
	return pr.stridedBase() + (origin*pr.Slots+slot)*4
}

// LocalWord returns the local-tail word for a given slot.
func (pr *Program) LocalWord(slot int) int { return pr.localBase() + slot }

// Validate checks structural invariants every program must satisfy to be
// runnable: ranks in range, slots in range, PSCW roles well-formed. It
// does not check cleanliness — injected programs are deliberately dirty.
func (pr *Program) Validate() error {
	if pr.Ranks < 2 {
		return fmt.Errorf("gen: program needs at least 2 ranks, has %d", pr.Ranks)
	}
	if pr.Slots < 1 {
		return fmt.Errorf("gen: program needs at least 1 slot, has %d", pr.Slots)
	}
	rankOK := func(r int) bool { return r >= 0 && r < pr.Ranks }
	for pi := range pr.Phases {
		ph := &pr.Phases[pi]
		for _, op := range ph.Ops {
			if !rankOK(op.Origin) || !rankOK(op.Target) {
				return fmt.Errorf("gen: phase %d: op ranks (%d→%d) out of world %d", pi, op.Origin, op.Target, pr.Ranks)
			}
			if op.Slot < 0 || op.Slot >= pr.Slots {
				return fmt.Errorf("gen: phase %d: slot %d out of %d", pi, op.Slot, pr.Slots)
			}
			hi := op.Word
			if op.Strided {
				if op.Kind != OpPut && op.Kind != OpGet {
					return fmt.Errorf("gen: phase %d: strided %s not supported", pi, op.Kind)
				}
				hi = op.Word + 2
			}
			if op.Word < 0 || hi >= pr.WinWords() {
				return fmt.Errorf("gen: phase %d: word %d outside window of %d", pi, op.Word, pr.WinWords())
			}
			if ph.Kind == PhasePSCW && op.Target != ph.PSCWTarget {
				return fmt.Errorf("gen: phase %d: pscw op targets %d, exposure is on %d", pi, op.Target, ph.PSCWTarget)
			}
		}
		for _, l := range concatLocals(ph) {
			if !rankOK(l.Rank) {
				return fmt.Errorf("gen: phase %d: local rank %d out of world %d", pi, l.Rank, pr.Ranks)
			}
			if l.Word < 0 {
				return fmt.Errorf("gen: phase %d: negative local word", pi)
			}
			switch l.Buf {
			case BufWindow:
				if l.Word >= pr.WinWords() {
					return fmt.Errorf("gen: phase %d: local window word %d outside window of %d", pi, l.Word, pr.WinWords())
				}
			case BufOrigin, BufResult, BufScratch:
				if l.Word >= pr.Slots {
					return fmt.Errorf("gen: phase %d: local %s word %d outside %d slots", pi, l.Buf, l.Word, pr.Slots)
				}
			case BufOriginV:
				if l.Word >= pr.Slots*4 {
					return fmt.Errorf("gen: phase %d: local %s word %d outside %d words", pi, l.Buf, l.Word, pr.Slots*4)
				}
			}
		}
		if ph.Kind == PhasePSCW {
			if !rankOK(ph.PSCWTarget) {
				return fmt.Errorf("gen: phase %d: pscw target %d out of world", pi, ph.PSCWTarget)
			}
			if len(ph.PSCWOrigins) == 0 {
				return fmt.Errorf("gen: phase %d: pscw phase with no origins", pi)
			}
			for _, o := range ph.PSCWOrigins {
				if !rankOK(o) || o == ph.PSCWTarget {
					return fmt.Errorf("gen: phase %d: bad pscw origin %d", pi, o)
				}
			}
			for _, op := range ph.Ops {
				found := false
				for _, o := range ph.PSCWOrigins {
					if op.Origin == o {
						found = true
					}
				}
				if !found {
					return fmt.Errorf("gen: phase %d: pscw op from non-origin rank %d", pi, op.Origin)
				}
			}
		}
	}
	return nil
}

func concatLocals(ph *Phase) []LocalOp {
	out := make([]LocalOp, 0, len(ph.Pre)+len(ph.In)+len(ph.Post))
	out = append(out, ph.Pre...)
	out = append(out, ph.In...)
	return append(out, ph.Post...)
}

// String renders the program compactly, one phase per line — the shape a
// failing fuzz or corpus run prints.
func (pr *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program seed=%d ranks=%d slots=%d phases=%d", pr.Seed, pr.Ranks, pr.Slots, len(pr.Phases))
	if pr.Injected != "" {
		cls := "within-epoch"
		if pr.ExpectAcross {
			cls = "across-processes"
		}
		fmt.Fprintf(&sb, " injected=%s (%s)", pr.Injected, cls)
	}
	for pi := range pr.Phases {
		ph := &pr.Phases[pi]
		fmt.Fprintf(&sb, "\n  [%d] %s", pi, ph.Kind)
		if ph.Kind == PhasePSCW {
			fmt.Fprintf(&sb, " target=%d origins=%v", ph.PSCWTarget, ph.PSCWOrigins)
		}
		if ph.Kind == PhaseLockAll && ph.FlushAll {
			sb.WriteString(" flush-all")
		}
		for _, op := range ph.Ops {
			mark := ""
			if op.Strided {
				mark = "v"
			}
			fmt.Fprintf(&sb, " %s%s(%d→%d w%d s%d)", op.Kind, mark, op.Origin, op.Target, op.Word, op.Slot)
		}
		for _, tag := range []struct {
			name string
			ops  []LocalOp
		}{{"pre", ph.Pre}, {"in", ph.In}, {"post", ph.Post}} {
			for _, l := range tag.ops {
				verb := "load"
				if l.Store {
					verb = "store"
				}
				fmt.Fprintf(&sb, " %s:%s(r%d %s w%d)", tag.name, verb, l.Rank, l.Buf, l.Word)
			}
		}
	}
	return sb.String()
}

// Body compiles the program to a per-rank function runnable on the
// simulator. The returned closure is safe for concurrent use across
// ranks and across runs (it captures only the immutable IR).
func (pr *Program) Body() func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		if p.Size() != pr.Ranks {
			return fmt.Errorf("gen: program built for %d ranks, running on %d", pr.Ranks, p.Size())
		}
		me := p.Rank()
		win := p.AllocFloat64(pr.WinWords(), "genwin")
		w := p.WinCreate(win, 8, p.CommWorld())
		orig := p.AllocFloat64(pr.Slots, "genorig")
		origv := p.AllocFloat64(pr.Slots*4, "genorigv")
		res := p.AllocFloat64(pr.Slots, "genres")
		scratch := p.AllocFloat64(pr.Slots, "genscratch")
		vec := p.TypeVector(2, 1, 2, mpi.Float64)

		runLocals := func(ops []LocalOp, phase int) {
			for _, l := range ops {
				if l.Rank != me {
					continue
				}
				buf := scratch
				switch l.Buf {
				case BufWindow:
					buf = win
				case BufOrigin:
					buf = orig
				case BufOriginV:
					buf = origv
				case BufResult:
					buf = res
				}
				off := uint64(l.Word) * 8
				if l.Store {
					buf.SetFloat64(off, float64(phase*1000+me*10+l.Word))
				} else {
					_ = buf.Float64At(off)
				}
			}
		}
		issue := func(op RMAOp) {
			switch op.Kind {
			case OpPut:
				if op.Strided {
					w.Put(origv, uint64(op.Slot*4)*8, 1, vec, op.Target, uint64(op.Word), 1, vec)
				} else {
					w.Put(orig, uint64(op.Slot)*8, 1, mpi.Float64, op.Target, uint64(op.Word), 1, mpi.Float64)
				}
			case OpGet:
				if op.Strided {
					w.Get(origv, uint64(op.Slot*4)*8, 1, vec, op.Target, uint64(op.Word), 1, vec)
				} else {
					w.Get(orig, uint64(op.Slot)*8, 1, mpi.Float64, op.Target, uint64(op.Word), 1, mpi.Float64)
				}
			case OpAcc:
				w.Accumulate(orig, uint64(op.Slot)*8, 1, mpi.Float64, op.Target, uint64(op.Word), 1, mpi.Float64, mpi.OpSum)
			case OpFetchOp:
				w.FetchAndOp(orig, uint64(op.Slot)*8, res, uint64(op.Slot)*8, op.Target, uint64(op.Word), mpi.Float64, mpi.OpSum)
			case OpGetAcc:
				w.GetAccumulate(orig, uint64(op.Slot)*8, 1, mpi.Float64,
					res, uint64(op.Slot)*8, 1, mpi.Float64,
					op.Target, uint64(op.Word), 1, mpi.Float64, mpi.OpSum)
			}
		}
		mine := func(ph *Phase) []RMAOp {
			var out []RMAOp
			for _, op := range ph.Ops {
				if op.Origin == me {
					out = append(out, op)
				}
			}
			return out
		}

		for pi := range pr.Phases {
			ph := &pr.Phases[pi]
			ops := mine(ph)
			runLocals(ph.Pre, pi)
			switch ph.Kind {
			case PhaseFence:
				w.Fence(mpi.AssertNone)
				for _, op := range ops {
					issue(op)
				}
				runLocals(ph.In, pi)
				w.Fence(mpi.AssertNone)
			case PhaseLock:
				targets := map[int]bool{}
				for _, op := range ops {
					targets[op.Target] = true
				}
				order := make([]int, 0, len(targets))
				for t := range targets {
					order = append(order, t)
				}
				sort.Ints(order)
				for _, t := range order {
					w.Lock(mpi.LockShared, t)
				}
				for _, op := range ops {
					issue(op)
				}
				runLocals(ph.In, pi)
				for _, t := range order {
					w.Unlock(t)
				}
			case PhaseLockAll:
				hasEpoch := len(ops) > 0
				if hasEpoch {
					w.LockAll()
				}
				for _, op := range ops {
					issue(op)
				}
				if hasEpoch && ph.FlushAll {
					w.FlushAll()
				}
				runLocals(ph.In, pi)
				if hasEpoch {
					w.UnlockAll()
				}
			case PhasePSCW:
				switch {
				case me == ph.PSCWTarget:
					w.Post(mpi.NewGroup(ph.PSCWOrigins))
					runLocals(ph.In, pi)
					w.WaitEpoch()
				case containsInt(ph.PSCWOrigins, me):
					w.Start(mpi.NewGroup([]int{ph.PSCWTarget}))
					for _, op := range ops {
						issue(op)
					}
					runLocals(ph.In, pi)
					w.Complete()
				default:
					// Bystander ranks still run their In accesses: a local
					// op is only placed on a bystander when it is safe (or
					// deliberately unsafe, for an injected bug).
					runLocals(ph.In, pi)
				}
			}
			runLocals(ph.Post, pi)
			p.Barrier(p.CommWorld())
		}
		w.Free()
		return nil
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
