package gen

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// run executes a program under the profiler and returns the trace set.
func run(t *testing.T, pr *Program) *trace.Set {
	t.Helper()
	sink := trace.NewMemorySink()
	hook := profiler.New(sink, nil)
	if err := mpi.Run(pr.Ranks, mpi.Options{Hook: hook}, pr.Body()); err != nil {
		t.Fatalf("run failed for %s: %v", pr, err)
	}
	return sink.Set()
}

func analyze(t *testing.T, pr *Program) *core.Report {
	t.Helper()
	rep, err := core.Analyze(run(t, pr))
	if err != nil {
		t.Fatalf("analysis failed for %s: %v", pr, err)
	}
	return rep
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		a := Generate(seed, Options{})
		b := Generate(seed, Options{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic:\n%s\nvs\n%s", seed, a, b)
		}
	}
	if reflect.DeepEqual(Generate(1, Options{}), Generate(2, Options{})) {
		t.Fatal("distinct seeds produced identical programs")
	}
}

func TestGenerateStructuralGuarantees(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		pr := Generate(seed, Options{})
		if err := pr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen := map[PhaseKind]bool{}
		for pi, ph := range pr.Phases {
			seen[ph.Kind] = true
			var put, get bool
			slots := map[[2]int]bool{}
			for _, op := range ph.Ops {
				if op.Kind == OpPut && !op.Strided {
					put = true
				}
				if op.Kind == OpGet && !op.Strided {
					get = true
				}
				key := [2]int{op.Origin, op.Slot}
				if slots[key] {
					t.Errorf("seed %d phase %d: slot reuse by origin %d slot %d", seed, pi, op.Origin, op.Slot)
				}
				slots[key] = true
				if _, ok := pr.freeSlot(pi, op.Origin); !ok {
					t.Errorf("seed %d phase %d: origin %d has no free slot", seed, pi, op.Origin)
				}
			}
			if !put || !get {
				t.Errorf("seed %d phase %d (%s): missing forced Put/Get (put=%v get=%v)", seed, pi, ph.Kind, put, get)
			}
			if ph.Kind == PhaseLockAll && !ph.FlushAll {
				t.Errorf("seed %d phase %d: clean lock-all without flush-all", seed, pi)
			}
		}
		for _, k := range []PhaseKind{PhaseFence, PhaseLock, PhaseLockAll, PhasePSCW} {
			if !seen[k] {
				t.Errorf("seed %d: no %s phase", seed, k)
			}
		}
	}
}

func TestCleanProgramsAnalyzeClean(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		pr := Generate(seed, Options{Ranks: 2 + int(seed%3)})
		rep := analyze(t, pr)
		if len(rep.Violations) != 0 {
			t.Errorf("seed %d: clean program flagged:\n%s\n%s", seed, pr, rep)
		}
	}
}

func TestEveryPatternDetected(t *testing.T) {
	for _, p := range Patterns() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				base := Generate(seed, Options{})
				pr, err := Inject(base, p.Name, seed+100)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := pr.Validate(); err != nil {
					t.Fatalf("seed %d: injected program invalid: %v\n%s", seed, err, pr)
				}
				rep := analyze(t, pr)
				if len(rep.Errors()) == 0 {
					t.Fatalf("seed %d: injected %s not detected:\n%s\n%s", seed, p.Name, pr, rep)
				}
				want := core.WithinEpoch
				if p.Across {
					want = core.AcrossProcesses
				}
				found := false
				for _, v := range rep.Errors() {
					if v.Class == want {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("seed %d: %s detected but no %v violation:\n%s\n%s", seed, p.Name, want, pr, rep)
				}
			}
		})
	}
}

func TestInjectDeterministic(t *testing.T) {
	base := Generate(7, Options{})
	for _, p := range Patterns() {
		a, err := Inject(base, p.Name, 42)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		b, err := Inject(base, p.Name, 42)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: injection not deterministic", p.Name)
		}
	}
}

func TestInjectDoesNotMutateBase(t *testing.T) {
	base := Generate(11, Options{})
	want := Generate(11, Options{})
	for _, p := range Patterns() {
		if _, err := Inject(base, p.Name, 1); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	if !reflect.DeepEqual(base, want) {
		t.Fatal("Inject mutated its base program")
	}
}

func TestInjectUnknownPattern(t *testing.T) {
	if _, err := Inject(Generate(1, Options{}), "no-such-pattern", 0); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}

func TestTraceRoundTripsCodecV2(t *testing.T) {
	pr := Generate(3, Options{})
	set := run(t, pr)
	for r, tr := range set.Traces {
		buf, err := trace.EncodeTrace(tr)
		if err != nil {
			t.Fatalf("rank %d: encode: %v", r, err)
		}
		got, err := trace.ReadTrace(bytesReader(buf))
		if err != nil {
			t.Fatalf("rank %d: decode: %v", r, err)
		}
		if len(got.Events) != len(tr.Events) {
			t.Fatalf("rank %d: decoded %d events, want %d", r, len(got.Events), len(tr.Events))
		}
	}
}
