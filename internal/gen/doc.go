// Package gen is the seeded random RMA program generator behind the
// planted-bug corpus (ROADMAP item 4): it emits valid-by-construction
// simulator programs — epoch grammar over fence / PSCW / lock / lock-all
// blocks with Put/Get/Accumulate/fetching-atomic bodies and local
// load/store interleavings — fully deterministic from a seed, with
// optional injected memory consistency bugs drawn from a catalog of
// known MPI-RMA error patterns.
//
// The package has three layers:
//
//   - Program (program.go): an executable IR. A Program is a phase list;
//     each phase opens one epoch shape, issues one-sided operations, and
//     interleaves plain loads and stores before, inside, and after the
//     epoch. Program.Body compiles the IR to a func(p *mpi.Proc) error
//     runnable on the simulator, so generated programs flow through the
//     exact pipeline the hand-written apps use.
//
//   - Generate (generate.go): the seeded random builder. Clean programs
//     are violation-free by construction: every (origin, slot) pair owns
//     a disjoint window region, origin/result staging buffers are only
//     touched outside open epochs (or after a completing flush), and a
//     rank stores to its own window only in phases where no remote
//     operation targets that window.
//
//   - Inject (inject.go): the bug catalog. Each Pattern is a minimal
//     mutation of a clean program — moving a local access inside an
//     epoch, overlapping two target footprints, dropping a flush — that
//     plants one of the literature's MPI-RMA consistency errors with a
//     known expected class. The differential harness
//     (internal/experiments Corpus) asserts every injected bug is caught
//     by at least one engine and every clean program analyzes clean.
package gen
