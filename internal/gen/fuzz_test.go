package gen

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// FuzzGenerate: any seed must produce a program that validates,
// simulates without deadlock, and whose trace round-trips through codec
// v2 byte-exactly (modulo nil-vs-empty slice canonicalization). A
// pattern byte additionally exercises every injector.
func FuzzGenerate(f *testing.F) {
	f.Add(uint64(0), byte(0))
	f.Add(uint64(1), byte(1))
	f.Add(uint64(12345), byte(255))
	for i, p := range Patterns() {
		f.Add(uint64(i)*77+7, byte(i+1))
		_ = p
	}
	f.Fuzz(func(t *testing.T, seed uint64, patternByte byte) {
		opts := Options{
			Ranks:  2 + int(seed%3),
			Slots:  3 + int(seed>>8%3),
			Phases: 4 + int(seed>>16%4),
		}
		pr := Generate(seed, opts)
		if err := pr.Validate(); err != nil {
			t.Fatalf("generated program invalid: %v\n%s", err, pr)
		}
		if patternByte != 0 {
			cat := Patterns()
			name := cat[(int(patternByte)-1)%len(cat)].Name
			injected, err := Inject(pr, name, seed^0x9e3779b9)
			if err != nil {
				t.Fatalf("inject %s: %v\n%s", name, err, pr)
			}
			if err := injected.Validate(); err != nil {
				t.Fatalf("injected program invalid: %v\n%s", err, injected)
			}
			pr = injected
		}

		sink := trace.NewMemorySink()
		hook := profiler.New(sink, nil)
		// A short timeout turns a deadlock into a run error instead of a
		// hung fuzz worker.
		err := mpi.Run(pr.Ranks, mpi.Options{Hook: hook, Timeout: 30 * time.Second}, pr.Body())
		if err != nil {
			t.Fatalf("simulation failed (deadlock?): %v\n%s", err, pr)
		}

		for r, tr := range sink.Set().Traces {
			buf, err := trace.EncodeTrace(tr)
			if err != nil {
				t.Fatalf("rank %d: encode: %v", r, err)
			}
			got, err := trace.ReadTrace(bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("rank %d: decode: %v", r, err)
			}
			if got.Rank != tr.Rank || len(got.Events) != len(tr.Events) {
				t.Fatalf("rank %d: round trip changed shape: %d/%d events", r, len(got.Events), len(tr.Events))
			}
			for i := range tr.Events {
				if !reflect.DeepEqual(normalizeEvent(tr.Events[i]), normalizeEvent(got.Events[i])) {
					t.Fatalf("rank %d event %d: round trip mismatch:\n got %#v\nwant %#v", r, i, got.Events[i], tr.Events[i])
				}
			}
		}
	})
}

// normalizeEvent maps nil and empty slices to a canonical form, mirroring
// the codec's own round-trip tests.
func normalizeEvent(ev trace.Event) trace.Event {
	if len(ev.TypeMap.Segments) == 0 {
		ev.TypeMap.Segments = nil
	}
	if len(ev.Members) == 0 {
		ev.Members = nil
	}
	return ev
}
