// Package mpi is a deterministic, in-process simulator of the MPI-2.2
// interface subset that MC-Checker instruments: point-to-point messaging,
// collectives, communicators and groups, derived datatypes, and the full
// one-sided (RMA) chapter with its three synchronization modes (fence,
// post/start/complete/wait, lock/unlock).
//
// Each rank runs as a goroutine with its own simulated address space
// (package memory). The simulator substitutes for the real MPI library the
// paper ran on: what MC-Checker consumes is the per-rank event trace, and
// the simulator produces the same event stream — and the same
// happens-before structure — that a real MPI run produces, via the Hook
// interface implemented by internal/profiler.
//
// # One-sided semantics
//
// Put, Get, and Accumulate are nonblocking: they are queued at the origin
// and applied only when the epoch closes (Win_fence, Win_unlock, or
// Win_complete), exactly the deferred-completion behaviour permitted by
// MPI-2.2 that makes the paper's bug cases manifest. A program that loads
// the destination of a Get before the epoch closes reads stale data; a
// program that stores to the source of a Put before the epoch closes
// corrupts the transfer. Pending operations are applied in deterministic
// (origin rank, issue order) so that runs are reproducible; MPI leaves this
// order undefined, and correct programs must not depend on it.
//
// # Errors
//
// Misuse that a real MPI library would flag or hang on (communication on a
// rank outside the communicator, RMA without an open epoch, mismatched
// collectives) panics with a *UsageError carrying the rank and call;
// World.Run recovers these panics and returns them. Deadlocks are broken by
// a configurable watchdog.
package mpi
