package mpi

import (
	"repro/internal/trace"
)

// Fence assertion flags (logged but not semantically interpreted; the
// paper's analysis likewise records them only for fidelity).
const (
	AssertNone      = 0
	AssertNoStore   = 1
	AssertNoPut     = 2
	AssertNoPrecede = 4
	AssertNoSucceed = 8
)

// Fence closes the current active-target fence epoch and opens the next one
// (MPI_Win_fence). It is collective over the window; all pending fence-mode
// operations of every rank are applied before any rank returns, in
// deterministic (origin rank, issue order).
func (w *Win) Fence(assert int) {
	p := w.p
	rel := w.s.comm.mustMember(p, "Win_fence")
	p.emit(trace.Event{
		Kind: trace.KindWinFence, Win: w.s.id, Comm: w.s.comm.id, Assert: int32(assert),
	}, 1)
	if w.fenceCount > 0 {
		p.world.metrics.epochClose(epochFence)
	}
	p.world.metrics.epochOpen(epochFence)
	mine := w.pendingFence
	w.pendingFence = nil
	w.fenceCount++
	w.s.fences.rendezvous(p, w.s.comm.Size(), rel, "Win_fence", mine,
		func(slots map[int]any) any {
			var all []*rmaOp
			for _, v := range slots {
				all = append(all, v.([]*rmaOp)...)
			}
			w.s.applyAll(all)
			return nil
		})
}

// Lock opens a passive-target access epoch on target's window
// (MPI_Win_lock). lt is LockShared or LockExclusive; an exclusive lock
// blocks until all other holders release, a shared lock blocks only while
// an exclusive lock is held.
func (w *Win) Lock(lt trace.LockType, target int) {
	p := w.p
	w.s.comm.mustMember(p, "Win_lock")
	if target < 0 || target >= w.s.comm.Size() {
		p.errorf("Win_lock", "target rank %d out of range", target)
	}
	if lt != trace.LockShared && lt != trace.LockExclusive {
		p.errorf("Win_lock", "invalid lock type %d", lt)
	}
	if w.lockHeld[target] != trace.LockNone {
		p.errorf("Win_lock", "target %d already locked by this rank", target)
	}
	p.emit(trace.Event{
		Kind: trace.KindWinLock, Win: w.s.id, Target: int32(target), Lock: lt,
	}, 1)
	release := p.enterBlocked("Win_lock")
	w.s.locks[target].acquire(p, "Win_lock", lt)
	release()
	w.lockHeld[target] = lt
	p.world.metrics.epochOpen(epochLock)
}

// Unlock closes the passive-target epoch on target (MPI_Win_unlock),
// applying all operations issued to that target under the lock.
func (w *Win) Unlock(target int) {
	p := w.p
	w.s.comm.mustMember(p, "Win_unlock")
	if w.lockHeld[target] == trace.LockNone {
		p.errorf("Win_unlock", "target %d is not locked by this rank", target)
	}
	ops := w.pendingLock[target]
	delete(w.pendingLock, target)
	w.s.applyAll(ops)
	w.s.locks[target].release(p.rank)
	delete(w.lockHeld, target)
	p.world.metrics.epochClose(epochLock)
	p.emit(trace.Event{
		Kind: trace.KindWinUnlock, Win: w.s.id, Target: int32(target),
	}, 1)
}

// Post opens an exposure epoch for the origin processes in group
// (MPI_Win_post). group contains communicator-relative ranks of the
// window's communicator, translated internally to world ranks.
func (w *Win) Post(group *Group) {
	p := w.p
	rel := w.s.comm.mustMember(p, "Win_post")
	p.emit(trace.Event{Kind: trace.KindWinPost, Win: w.s.id, Members: toInt32s(group.Ranks())}, 1)
	w.s.pscwMu.Lock()
	if _, busy := w.s.posts[rel]; busy {
		w.s.pscwMu.Unlock()
		p.errorf("Win_post", "exposure epoch already open")
	}
	w.s.posts[rel] = &postRecord{origins: group, remaining: group.Size(), done: make(map[int]bool)}
	w.s.pscwCond.Broadcast()
	w.s.pscwMu.Unlock()
	p.world.metrics.epochOpen(epochPSCWExposure)
}

// Start opens an access epoch to the target processes in group
// (MPI_Win_start). It blocks until every target has posted an exposure
// epoch that includes this rank (a legal, conservative implementation of
// the MPI semantics).
func (w *Win) Start(group *Group) {
	p := w.p
	w.s.comm.mustMember(p, "Win_start")
	if w.startGroup != nil {
		p.errorf("Win_start", "access epoch already open")
	}
	p.emit(trace.Event{Kind: trace.KindWinStart, Win: w.s.id, Members: toInt32s(group.Ranks())}, 1)
	release := p.enterBlocked("Win_start")
	defer release()
	w.s.pscwMu.Lock()
	for _, tw := range group.Ranks() {
		trel := w.s.comm.group.Rank(tw)
		if trel < 0 {
			w.s.pscwMu.Unlock()
			p.errorf("Win_start", "target world rank %d not in window communicator", tw)
		}
		for {
			rec, ok := w.s.posts[trel]
			if ok && rec.origins.Contains(p.rank) {
				break
			}
			if p.world.abortedNow() {
				w.s.pscwMu.Unlock()
				panic(abortPanic{})
			}
			// Fault-tolerant mode: a dead target will never post.
			if p.world.anyFailed() && p.world.rankIsFailed(tw) {
				w.s.pscwMu.Unlock()
				p.failPeer("Win_start", tw)
			}
			w.s.pscwCond.Wait()
		}
	}
	w.s.pscwMu.Unlock()
	w.startGroup = group
	p.world.metrics.epochOpen(epochPSCWAccess)
}

// Complete closes the access epoch (MPI_Win_complete), applying all
// operations issued since Start and notifying the targets.
func (w *Win) Complete() {
	p := w.p
	if w.startGroup == nil {
		p.errorf("Win_complete", "no access epoch open")
	}
	ops := w.pendingStart
	w.pendingStart = nil
	w.s.applyAll(ops)
	group := w.startGroup
	w.startGroup = nil
	p.world.metrics.epochClose(epochPSCWAccess)
	p.emit(trace.Event{Kind: trace.KindWinComplete, Win: w.s.id}, 1)
	w.s.pscwMu.Lock()
	for _, tw := range group.Ranks() {
		trel := w.s.comm.group.Rank(tw)
		if rec, ok := w.s.posts[trel]; ok {
			rec.remaining--
			rec.done[p.rank] = true
		}
	}
	w.s.pscwCond.Broadcast()
	w.s.pscwMu.Unlock()
}

// WaitEpoch closes the exposure epoch (MPI_Win_wait), blocking until every
// origin in the posted group has called Complete.
func (w *Win) WaitEpoch() {
	p := w.p
	rel := w.s.comm.mustMember(p, "Win_wait")
	release := p.enterBlocked("Win_wait")
	defer release()
	w.s.pscwMu.Lock()
	rec, ok := w.s.posts[rel]
	if !ok {
		w.s.pscwMu.Unlock()
		p.errorf("Win_wait", "no exposure epoch open")
	}
	for rec.remaining > 0 {
		if p.world.abortedNow() {
			w.s.pscwMu.Unlock()
			panic(abortPanic{})
		}
		// Fault-tolerant mode: an origin that died before Win_complete
		// will never close its access epoch.
		if p.world.anyFailed() {
			for _, orig := range rec.origins.Ranks() {
				if !rec.done[orig] && p.world.rankIsFailed(orig) {
					w.s.pscwMu.Unlock()
					p.failPeer("Win_wait", orig)
				}
			}
		}
		w.s.pscwCond.Wait()
	}
	delete(w.s.posts, rel)
	w.s.pscwMu.Unlock()
	p.world.metrics.epochClose(epochPSCWExposure)
	p.emit(trace.Event{Kind: trace.KindWinWait, Win: w.s.id}, 1)
}
