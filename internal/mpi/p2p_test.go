package mpi

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

func TestSendRecvInt32(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		buf := p.Alloc(4, "x")
		if p.Rank() == 0 {
			buf.SetInt32(0, 12345)
			p.Send(p.CommWorld(), buf, 0, 1, Int32, 1, 7)
		} else {
			st := p.Recv(p.CommWorld(), buf, 0, 1, Int32, 0, 7)
			if got := buf.Int32At(0); got != 12345 {
				t.Errorf("received %d", got)
			}
			if st.Source != 0 || st.Tag != 7 || st.Bytes != 4 {
				t.Errorf("status = %+v", st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	err := Run(3, Options{}, func(p *Proc) error {
		buf := p.Alloc(8, "x")
		switch p.Rank() {
		case 0:
			buf.SetInt64(0, 11)
			p.Send(p.CommWorld(), buf, 0, 1, Int64, 2, 1)
		case 1:
			buf.SetInt64(0, 22)
			p.Send(p.CommWorld(), buf, 0, 1, Int64, 2, 2)
		case 2:
			sum := int64(0)
			for i := 0; i < 2; i++ {
				st := p.Recv(p.CommWorld(), buf, 0, 1, Int64, AnySource, AnyTag)
				v := buf.Int64At(0)
				sum += v
				if (v == 11 && st.Source != 0) || (v == 22 && st.Source != 1) {
					t.Errorf("resolved source %d for value %d", st.Source, v)
				}
			}
			if sum != 33 {
				t.Errorf("sum = %d", sum)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertaking(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		buf := p.Alloc(4, "x")
		if p.Rank() == 0 {
			for i := int32(0); i < 20; i++ {
				buf.SetInt32(0, i)
				p.Send(p.CommWorld(), buf, 0, 1, Int32, 1, 9)
			}
		} else {
			for i := int32(0); i < 20; i++ {
				p.Recv(p.CommWorld(), buf, 0, 1, Int32, 0, 9)
				if got := buf.Int32At(0); got != i {
					t.Fatalf("message %d arrived as %d: overtaking", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		buf := p.Alloc(4, "x")
		if p.Rank() == 0 {
			buf.SetInt32(0, 1)
			p.Send(p.CommWorld(), buf, 0, 1, Int32, 1, 100)
			buf.SetInt32(0, 2)
			p.Send(p.CommWorld(), buf, 0, 1, Int32, 1, 200)
		} else {
			// Receive the later tag first.
			p.Recv(p.CommWorld(), buf, 0, 1, Int32, 0, 200)
			if buf.Int32At(0) != 2 {
				t.Error("tag 200 delivered wrong payload")
			}
			p.Recv(p.CommWorld(), buf, 0, 1, Int32, 0, 100)
			if buf.Int32At(0) != 1 {
				t.Error("tag 100 delivered wrong payload")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	h := newRecordingHook()
	err := Run(2, Options{Hook: h}, func(p *Proc) error {
		buf := p.Alloc(4, "x")
		if p.Rank() == 0 {
			buf.SetInt32(0, 77)
			req := p.Isend(p.CommWorld(), buf, 0, 1, Int32, 1, 3)
			p.Wait(req)
		} else {
			req := p.Irecv(p.CommWorld(), buf, 0, 1, Int32, 0, 3)
			st := p.Wait(req)
			if buf.Int32At(0) != 77 || st.Source != 0 {
				t.Errorf("irecv: val=%d st=%+v", buf.Int32At(0), st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The receiver's trace must contain Irecv then Wait with matching Req,
	// and the Wait must carry the resolved source.
	irecvs := h.eventsOf(1, trace.KindIrecv)
	waits := h.eventsOf(1, trace.KindWaitReq)
	if len(irecvs) != 1 || len(waits) != 1 {
		t.Fatalf("irecv=%d wait=%d", len(irecvs), len(waits))
	}
	if irecvs[0].Req != waits[0].Req {
		t.Error("request ids do not match")
	}
	if waits[0].Peer != 0 {
		t.Error("wait did not resolve source")
	}
}

func TestWaitOnForeignRequest(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		buf := p.Alloc(4, "x")
		reqs := make(chan *Request, 1)
		if p.Rank() == 0 {
			req := p.Isend(p.CommWorld(), buf, 0, 1, Int32, 1, 3)
			reqs <- req
			// Leak the request to rank 1 via closure is not possible in
			// real MPI; here we just check the guard on our own proc.
			r2 := <-reqs
			p.Wait(r2)
			p.Send(p.CommWorld(), buf, 0, 1, Int32, 1, 4)
		} else {
			p.Recv(p.CommWorld(), buf, 0, 1, Int32, 0, 3)
			p.Recv(p.CommWorld(), buf, 0, 1, Int32, 0, 4)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecv(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		sb := p.Alloc(4, "s")
		rb := p.Alloc(4, "r")
		sb.SetInt32(0, int32(100+p.Rank()))
		other := 1 - p.Rank()
		p.Sendrecv(p.CommWorld(),
			sb, 0, 1, Int32, other, 0,
			rb, 0, 1, Int32, other, 0)
		if got := rb.Int32At(0); got != int32(100+other) {
			t.Errorf("rank %d received %d", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTruncationError(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		if p.Rank() == 0 {
			buf := p.Alloc(8, "big")
			p.Send(p.CommWorld(), buf, 0, 2, Int32, 1, 0)
		} else {
			small := p.Alloc(4, "small")
			p.Recv(p.CommWorld(), small, 0, 1, Int32, 0, 0)
		}
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) || ue.Rank != 1 {
		t.Errorf("err = %v", err)
	}
}

func TestDerivedTypeTransfer(t *testing.T) {
	// Send a strided column, receive it contiguously.
	err := Run(2, Options{}, func(p *Proc) error {
		if p.Rank() == 0 {
			mat := p.Alloc(16*4, "mat") // 4x4 int32 matrix, row-major
			for r := uint64(0); r < 4; r++ {
				for c := uint64(0); c < 4; c++ {
					mat.SetInt32((r*4+c)*4, int32(r*10+c))
				}
			}
			col := p.TypeVector(4, 1, 4, Int32)           // column stride 4 elements
			p.Send(p.CommWorld(), mat, 1*4, 1, col, 1, 0) // column 1
		} else {
			buf := p.Alloc(16, "col")
			p.Recv(p.CommWorld(), buf, 0, 4, Int32, 0, 0)
			want := []int32{1, 11, 21, 31}
			for i, w := range want {
				if got := buf.Int32At(uint64(i) * 4); got != w {
					t.Errorf("col[%d] = %d, want %d", i, got, w)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
