package mpi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

func TestFencePutGet(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(32, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			src.SetFloat64(0, 2.25)
			w.Put(src, 0, 1, Float64, 1, 8, 1, Float64) // disp 8 bytes into rank 1's window
		}
		w.Fence(AssertNone)
		if p.Rank() == 1 {
			if got := w.LocalBuffer().Float64At(8); got != 2.25 {
				t.Errorf("put result = %g", got)
			}
			w.LocalBuffer().SetFloat64(16, 9.5)
		}
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			dst := p.Alloc(8, "dst")
			w.Get(dst, 0, 1, Float64, 1, 16, 1, Float64)
			w.Fence(AssertNone)
			if got := dst.Float64At(0); got != 9.5 {
				t.Errorf("get result = %g", got)
			}
		} else {
			w.Fence(AssertNone)
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeferredCompletion verifies the core simulator property the paper's
// bugs depend on: Put/Get do not move data until the epoch closes.
func TestDeferredCompletion(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		if p.Rank() == 1 {
			win.SetInt64(0, 42)
		}
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			dst := p.Alloc(8, "out")
			dst.SetInt64(0, -1)
			w.Get(dst, 0, 1, Int64, 1, 0, 1, Int64)
			// Figure 1 of the paper: reading before the epoch closes sees
			// the OLD value because Get is nonblocking.
			if got := dst.Int64At(0); got != -1 {
				t.Errorf("Get completed eagerly: saw %d before fence", got)
			}
			w.Fence(AssertNone)
			if got := dst.Int64At(0); got != 42 {
				t.Errorf("Get did not complete at fence: %d", got)
			}
		} else {
			w.Fence(AssertNone)
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPutReadsOriginAtCompletion verifies that a store to the origin buffer
// between Put and fence corrupts the transfer — the ADLB/GFMC bug class
// (paper Figure 2a) must actually manifest.
func TestPutReadsOriginAtCompletion(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "buf")
			src.SetInt64(0, 7)
			w.Put(src, 0, 1, Int64, 1, 0, 1, Int64)
			src.SetInt64(0, 666) // the bug: overwrite before completion
		}
		w.Fence(AssertNone)
		if p.Rank() == 1 {
			if got := w.LocalBuffer().Int64At(0); got != 666 {
				t.Errorf("deferred put transferred %d; the buggy store should corrupt it", got)
			}
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateSum(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		win.SetFloat64(0, 0)
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(AssertNone)
		src := p.Alloc(8, "src")
		src.SetFloat64(0, float64(p.Rank()+1))
		w.Accumulate(src, 0, 1, Float64, 0, 0, 1, Float64, trace.OpSum)
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			if got := w.LocalBuffer().Float64At(0); got != 10 { // 1+2+3+4
				t.Errorf("accumulate sum = %g", got)
			}
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateReplaceAndValidation(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			src.SetInt64(0, 31)
			w.Accumulate(src, 0, 1, Int64, 1, 0, 1, Int64, trace.OpReplace)
		}
		w.Fence(AssertNone)
		if p.Rank() == 1 && w.LocalBuffer().Int64At(0) != 31 {
			t.Errorf("replace = %d", w.LocalBuffer().Int64At(0))
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Missing op is a usage error.
	err = Run(1, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(AssertNone)
		src := p.Alloc(8, "src")
		w.Accumulate(src, 0, 1, Int64, 0, 0, 1, Int64, trace.OpNone)
		return nil
	})
	if err == nil {
		t.Error("OpNone must be rejected")
	}
}

func TestLockUnlockPassiveTarget(t *testing.T) {
	err := Run(3, Options{}, func(p *Proc) error {
		win := p.Alloc(24, "win")
		w := p.WinCreate(win, 8, p.CommWorld()) // disp unit 8
		p.Barrier(p.CommWorld())
		if p.Rank() != 0 {
			src := p.Alloc(8, "src")
			src.SetFloat64(0, float64(p.Rank()))
			w.Lock(trace.LockShared, 0)
			w.Put(src, 0, 1, Float64, 0, uint64(p.Rank()), 1, Float64)
			w.Unlock(0)
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			if w.LocalBuffer().Float64At(8) != 1 || w.LocalBuffer().Float64At(16) != 2 {
				t.Errorf("lock/put results: %g %g",
					w.LocalBuffer().Float64At(8), w.LocalBuffer().Float64At(16))
			}
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveLockMutualExclusion(t *testing.T) {
	var inside atomic.Int32
	var overlap atomic.Bool
	err := Run(4, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		for i := 0; i < 10; i++ {
			w.Lock(trace.LockExclusive, 0)
			if inside.Add(1) > 1 {
				overlap.Store(true)
			}
			inside.Add(-1)
			w.Unlock(0)
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if overlap.Load() {
		t.Error("two ranks held the exclusive lock simultaneously")
	}
}

func TestLockStateErrors(t *testing.T) {
	err := Run(1, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Unlock(0) // not locked
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) || ue.Call != "Win_unlock" {
		t.Errorf("err = %v", err)
	}

	err = Run(1, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Lock(trace.LockShared, 0)
		w.Lock(trace.LockShared, 0) // double lock
		return nil
	})
	if !errors.As(err, &ue) || ue.Call != "Win_lock" {
		t.Errorf("err = %v", err)
	}
}

func TestRMAWithoutEpochFails(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Put(src, 0, 1, Int64, 1, 0, 1, Int64) // no fence/lock/start
		}
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) || !strings.Contains(ue.Msg, "epoch") {
		t.Errorf("err = %v", err)
	}
}

func TestPSCW(t *testing.T) {
	err := Run(3, Options{}, func(p *Proc) error {
		win := p.Alloc(16, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		world := p.CommWorld().Group()
		switch p.Rank() {
		case 0: // target
			w.Post(world.Incl([]int{1, 2}))
			w.WaitEpoch()
			if w.LocalBuffer().Int64At(0) != 100 || w.LocalBuffer().Int64At(8) != 200 {
				t.Errorf("pscw puts: %d %d", w.LocalBuffer().Int64At(0), w.LocalBuffer().Int64At(8))
			}
		case 1, 2:
			src := p.Alloc(8, "src")
			src.SetInt64(0, int64(p.Rank()*100))
			w.Start(world.Incl([]int{0}))
			w.Put(src, 0, 1, Int64, 0, uint64((p.Rank()-1)*8), 1, Int64)
			w.Complete()
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPSCWErrors(t *testing.T) {
	err := Run(1, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Complete() // no Start
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) || ue.Call != "Win_complete" {
		t.Errorf("err = %v", err)
	}

	err = Run(1, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.WaitEpoch() // no Post
		return nil
	})
	if !errors.As(err, &ue) || ue.Call != "Win_wait" {
		t.Errorf("err = %v", err)
	}
}

func TestTargetRangeCheck(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(16, "src")
			w.Put(src, 0, 2, Int64, 1, 0, 2, Int64) // 16 bytes into an 8-byte window
		}
		w.Fence(AssertNone)
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) || !strings.Contains(ue.Msg, "window") {
		t.Errorf("err = %v", err)
	}
}

func TestTransferSizeMismatch(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Put(src, 0, 1, Int64, 1, 0, 3, Int32) // 8 vs 12 bytes
		}
		w.Fence(AssertNone)
		return nil
	})
	if err == nil {
		t.Error("size mismatch must be rejected")
	}
}

func TestWinCreateEventLogged(t *testing.T) {
	h := newRecordingHook()
	err := Run(2, Options{Hook: h}, func(p *Proc) error {
		win := p.Alloc(128, "win")
		w := p.WinCreate(win, 4, p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := h.eventsOf(0, trace.KindWinCreate)
	if len(evs) != 1 {
		t.Fatalf("win create events: %d", len(evs))
	}
	if evs[0].WinSize != 128 || evs[0].DispUnit != 4 || evs[0].WinBase == 0 {
		t.Errorf("win create = %+v", evs[0])
	}
	if len(h.eventsOf(1, trace.KindWinFree)) != 1 {
		t.Error("win free not logged")
	}
}

func TestStridedPut(t *testing.T) {
	// Put a contiguous buffer into a strided target layout.
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(48, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		var stride *Datatype
		if p.Rank() == 0 {
			stride = p.TypeVector(3, 1, 2, Int32) // target: every other int32
		}
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(12, "src")
			for i := uint64(0); i < 3; i++ {
				src.SetInt32(i*4, int32(i+1))
			}
			w.Put(src, 0, 3, Int32, 1, 0, 1, stride)
		}
		w.Fence(AssertNone)
		if p.Rank() == 1 {
			lb := w.LocalBuffer()
			if lb.Int32At(0) != 1 || lb.Int32At(8) != 2 || lb.Int32At(16) != 3 {
				t.Errorf("strided put: %d %d %d", lb.Int32At(0), lb.Int32At(8), lb.Int32At(16))
			}
			if lb.Int32At(4) != 0 {
				t.Error("gap byte written")
			}
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
