package mpi

import (
	"testing"

	"repro/internal/trace"
)

func TestBcast(t *testing.T) {
	err := Run(4, Options{}, func(p *Proc) error {
		buf := p.Alloc(16, "data")
		if p.Rank() == 2 {
			for i := uint64(0); i < 4; i++ {
				buf.SetInt32(i*4, int32(1000+i))
			}
		}
		p.Bcast(p.CommWorld(), buf, 0, 4, Int32, 2)
		for i := uint64(0); i < 4; i++ {
			if got := buf.Int32At(i * 4); got != int32(1000+i) {
				t.Errorf("rank %d: buf[%d] = %d", p.Rank(), i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	err := Run(5, Options{}, func(p *Proc) error {
		send := p.Alloc(8, "send")
		recv := p.Alloc(8, "recv")
		send.SetFloat64(0, float64(p.Rank()+1))
		p.Reduce(p.CommWorld(), send, 0, recv, 0, 1, Float64, trace.OpSum, 0)
		if p.Rank() == 0 {
			if got := recv.Float64At(0); got != 15 { // 1+2+3+4+5
				t.Errorf("reduce sum = %g", got)
			}
		}
		p.Allreduce(p.CommWorld(), send, 0, recv, 0, 1, Float64, trace.OpMax)
		if got := recv.Float64At(0); got != 5 {
			t.Errorf("rank %d allreduce max = %g", p.Rank(), got)
		}
		p.Allreduce(p.CommWorld(), send, 0, recv, 0, 1, Float64, trace.OpMin)
		if got := recv.Float64At(0); got != 1 {
			t.Errorf("allreduce min = %g", got)
		}
		p.Allreduce(p.CommWorld(), send, 0, recv, 0, 1, Float64, trace.OpProd)
		if got := recv.Float64At(0); got != 120 {
			t.Errorf("allreduce prod = %g", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceInt32(t *testing.T) {
	err := Run(3, Options{}, func(p *Proc) error {
		send := p.Alloc(8, "send")
		recv := p.Alloc(8, "recv")
		send.SetInt32(0, int32(p.Rank()))
		send.SetInt32(4, int32(10*p.Rank()))
		p.Allreduce(p.CommWorld(), send, 0, recv, 0, 2, Int32, trace.OpSum)
		if recv.Int32At(0) != 3 || recv.Int32At(4) != 30 {
			t.Errorf("int32 vector reduce: %d %d", recv.Int32At(0), recv.Int32At(4))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(p *Proc) error {
		send := p.Alloc(4, "send")
		recv := p.Alloc(4*n, "recv")
		send.SetInt32(0, int32(p.Rank()*100))
		p.Gather(p.CommWorld(), send, 0, 1, Int32, recv, 0, 1)
		if p.Rank() == 1 {
			for r := uint64(0); r < n; r++ {
				if got := recv.Int32At(r * 4); got != int32(r*100) {
					t.Errorf("gather[%d] = %d", r, got)
				}
			}
		}
		// Scatter back doubled values.
		src := p.Alloc(4*n, "src")
		dst := p.Alloc(4, "dst")
		if p.Rank() == 1 {
			for r := uint64(0); r < n; r++ {
				src.SetInt32(r*4, int32(r*2))
			}
		}
		p.Scatter(p.CommWorld(), src, 0, 1, Int32, dst, 0, 1)
		if got := dst.Int32At(0); got != int32(p.Rank()*2) {
			t.Errorf("rank %d scatter got %d", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 3
	err := Run(n, Options{}, func(p *Proc) error {
		send := p.Alloc(8, "send")
		recv := p.Alloc(8*n, "recv")
		send.SetFloat64(0, float64(p.Rank())+0.5)
		p.Allgather(p.CommWorld(), send, 0, 1, Float64, recv, 0)
		for r := uint64(0); r < n; r++ {
			if got := recv.Float64At(r * 8); got != float64(r)+0.5 {
				t.Errorf("rank %d allgather[%d] = %g", p.Rank(), r, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(p *Proc) error {
		send := p.Alloc(4*n, "send")
		recv := p.Alloc(4*n, "recv")
		for r := uint64(0); r < n; r++ {
			send.SetInt32(r*4, int32(p.Rank()*10+int(r)))
		}
		p.Alltoall(p.CommWorld(), send, 0, 1, Int32, recv, 0)
		for r := uint64(0); r < n; r++ {
			want := int32(int(r)*10 + p.Rank())
			if got := recv.Int32At(r * 4); got != want {
				t.Errorf("rank %d recv[%d] = %d, want %d", p.Rank(), r, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveOnSubComm(t *testing.T) {
	err := Run(4, Options{}, func(p *Proc) error {
		sub := p.CommSplit(p.CommWorld(), p.Rank()%2, p.Rank())
		buf := p.Alloc(4, "b")
		if sub.RankOf(p) == 0 {
			buf.SetInt32(0, int32(100+p.Rank()%2))
		}
		p.Bcast(sub, buf, 0, 1, Int32, 0)
		if got := buf.Int32At(0); got != int32(100+p.Rank()%2) {
			t.Errorf("rank %d sub-bcast got %d", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierManyRanks(t *testing.T) {
	// Stress the rendezvous with repeated barriers at 64 ranks.
	err := Run(64, Options{}, func(p *Proc) error {
		for i := 0; i < 25; i++ {
			p.Barrier(p.CommWorld())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
