package mpi

import (
	"sync/atomic"
	"testing"

	"repro/internal/faults"
)

// runSchedProbe runs a 3-rank program in which ranks 0 and 1 race a Put to
// rank 2's window inside one fence epoch, and returns the value rank 2
// observes after the closing fence — 1 when rank 0's Put completed last,
// 2 when rank 1's did. The baseline (origin rank, issue order) completion
// order always yields 2; schedule clauses can legally flip it.
func runSchedProbe(t *testing.T, plan *faults.Plan) int32 {
	t.Helper()
	var got atomic.Int32
	err := Run(3, Options{Faults: plan}, func(p *Proc) error {
		wbuf := p.AllocInt32(1, "wbuf")
		w := p.WinCreate(wbuf, 4, p.CommWorld())
		src := p.AllocInt32(1, "src")
		src.SetInt32(0, int32(p.Rank()+1))
		w.Fence(AssertNone)
		if p.Rank() < 2 {
			w.Put(src, 0, 1, Int32, 2, 0, 1, Int32)
		}
		w.Fence(AssertNone)
		if p.Rank() == 2 {
			got.Store(wbuf.Int32At(0))
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got.Load()
}

func TestScheduleBaselineOrder(t *testing.T) {
	if v := runSchedProbe(t, nil); v != 2 {
		t.Fatalf("baseline completion order: rank 2 saw %d, want 2 (origin 1 applies last)", v)
	}
}

func TestSchedulePriorityOrder(t *testing.T) {
	// prio=1.0: rank 0 has priority 1, rank 1 priority 0 — rank 0's Put
	// applies later and wins.
	if v := runSchedProbe(t, mustPlan(t, "seed=1,prio=1.0")); v != 1 {
		t.Fatalf("prio=1.0: rank 2 saw %d, want 1", v)
	}
	// Identity priorities keep the baseline.
	if v := runSchedProbe(t, mustPlan(t, "seed=1,prio=0.1")); v != 2 {
		t.Fatalf("prio=0.1: rank 2 saw %d, want 2", v)
	}
}

func TestScheduleDelayOrder(t *testing.T) {
	// Delaying origin 0 in the racing batch (ordinal 0) moves its Put to
	// the back: it wins.
	if v := runSchedProbe(t, mustPlan(t, "seed=1,delay=0@0")); v != 1 {
		t.Fatalf("delay=0@0: rank 2 saw %d, want 1", v)
	}
	// A delay addressed at a later batch does not touch the race.
	if v := runSchedProbe(t, mustPlan(t, "seed=1,delay=0@7")); v != 2 {
		t.Fatalf("delay=0@7: rank 2 saw %d, want 2", v)
	}
	// Delaying the rank that already applies last changes nothing.
	if v := runSchedProbe(t, mustPlan(t, "seed=1,delay=1@0")); v != 2 {
		t.Fatalf("delay=1@0: rank 2 saw %d, want 2", v)
	}
}

func TestScheduleChangePointDeterministic(t *testing.T) {
	// A change point demotes a seed-derived rank to apply first. Whatever
	// outcome a seed picks, it must reproduce exactly, and across a seed
	// sweep both completion orders must occur.
	outcomes := map[int32]bool{}
	for seed := uint64(1); seed <= 16; seed++ {
		plan := mustPlan(t, "chg=0").WithSeed(seed)
		a := runSchedProbe(t, plan)
		b := runSchedProbe(t, plan)
		if a != b {
			t.Fatalf("seed %d: change-point schedule not deterministic (%d vs %d)", seed, a, b)
		}
		outcomes[a] = true
	}
	if !outcomes[1] || !outcomes[2] {
		t.Errorf("change-point sweep over 16 seeds explored only %v, want both orders", outcomes)
	}
}

func TestScheduleReorderDeterministic(t *testing.T) {
	outcomes := map[int32]bool{}
	for seed := uint64(1); seed <= 16; seed++ {
		plan := mustPlan(t, "reorder").WithSeed(seed)
		a := runSchedProbe(t, plan)
		b := runSchedProbe(t, plan)
		if a != b {
			t.Fatalf("seed %d: reorder schedule not deterministic (%d vs %d)", seed, a, b)
		}
		outcomes[a] = true
	}
	if !outcomes[1] || !outcomes[2] {
		t.Errorf("reorder sweep over 16 seeds explored only %v, want both orders", outcomes)
	}
}
