package mpi

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestCommCreate(t *testing.T) {
	h := newRecordingHook()
	var mu sync.Mutex
	got := map[int]*Comm{}
	err := Run(4, Options{Hook: h}, func(p *Proc) error {
		g := p.CommWorld().Group().Incl([]int{1, 3})
		nc := p.CommCreate(p.CommWorld(), g)
		mu.Lock()
		got[p.Rank()] = nc
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != nil || got[2] != nil {
		t.Error("non-members must get nil")
	}
	if got[1] == nil || got[3] == nil {
		t.Fatal("members must get the new comm")
	}
	if got[1] != got[3] {
		t.Error("members must share one comm object")
	}
	if got[1].Size() != 2 || got[1].ID() == 0 {
		t.Errorf("new comm: size=%d id=%d", got[1].Size(), got[1].ID())
	}
	// Rank translation: world 3 is relative rank 1 in the new comm.
	if got[1].WorldRank(1) != 3 {
		t.Error("rank translation wrong")
	}
	// Members logged as world ranks.
	evs := h.eventsOf(1, trace.KindCommCreate)
	if len(evs) != 1 || !reflect.DeepEqual(evs[0].Members, []int32{1, 3}) {
		t.Errorf("CommCreate events: %v", evs)
	}
	// Non-members must not log a comm-create event.
	if len(h.eventsOf(0, trace.KindCommCreate)) != 0 {
		t.Error("non-member logged comm create")
	}
}

func TestCommSplit(t *testing.T) {
	var mu sync.Mutex
	got := map[int]*Comm{}
	err := Run(6, Options{}, func(p *Proc) error {
		// Even/odd split, new ranks ordered by descending world rank via key.
		nc := p.CommSplit(p.CommWorld(), p.Rank()%2, -p.Rank())
		mu.Lock()
		got[p.Rank()] = nc
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	even := got[0]
	if even.Size() != 3 {
		t.Fatalf("even comm size = %d", even.Size())
	}
	if !reflect.DeepEqual(even.Group().Ranks(), []int{4, 2, 0}) {
		t.Errorf("even comm order = %v (keys order by -world)", even.Group().Ranks())
	}
	if got[1].Group().Contains(0) {
		t.Error("odd comm contains even rank")
	}
	if even.ID() == got[1].ID() {
		t.Error("split comms must have distinct ids")
	}
}

func TestCommSplitUndefined(t *testing.T) {
	err := Run(3, Options{}, func(p *Proc) error {
		color := 0
		if p.Rank() == 2 {
			color = -1 // MPI_UNDEFINED
		}
		nc := p.CommSplit(p.CommWorld(), color, 0)
		if p.Rank() == 2 && nc != nil {
			t.Error("undefined color must yield nil")
		}
		if p.Rank() != 2 && nc.Size() != 2 {
			t.Error("wrong split size")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommDup(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		dup := p.CommDup(p.CommWorld())
		if dup.ID() == 0 || dup.Size() != 2 {
			t.Error("dup wrong")
		}
		// Messages on the dup do not match messages on the world comm.
		buf := p.Alloc(4, "b")
		if p.Rank() == 0 {
			p.Send(dup, buf, 0, 1, Int32, 1, 5)
			p.Send(p.CommWorld(), buf, 0, 1, Int32, 1, 5)
		} else {
			st := p.Recv(p.CommWorld(), buf, 0, 1, Int32, 0, 5)
			if st.Source != 0 {
				t.Error("world recv failed")
			}
			p.Recv(dup, buf, 0, 1, Int32, 0, 5)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveMismatchDetected(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Barrier(p.CommWorld())
		} else {
			buf := p.Alloc(4, "b")
			p.Bcast(p.CommWorld(), buf, 0, 1, Int32, 0)
		}
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) || !strings.Contains(ue.Msg, "mismatch") {
		t.Errorf("err = %v", err)
	}
}

func TestNonMemberCommUse(t *testing.T) {
	err := Run(4, Options{}, func(p *Proc) error {
		g := p.CommWorld().Group().Incl([]int{0, 1})
		nc := p.CommCreate(p.CommWorld(), g)
		if p.Rank() == 2 {
			// Not a member: using the handle (leaked via shared memory in
			// a real test we just reconstruct) must fail. Simulate by
			// grabbing world and making a bogus call through rank 0's comm:
			// non-members get nil, so construct the error differently —
			// barrier on a comm p doesn't belong to.
			_ = nc // nil for rank 2
		}
		if nc != nil {
			p.Barrier(nc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
