package mpi

import (
	"bytes"

	"repro/internal/memory"
	"repro/internal/trace"
)

// MPI-3 one-sided extensions (paper §V): window allocation, lock_all
// passive epochs, flush synchronization, and the fetching accumulate
// family. Like MPI-2 operations, the MPI-3 calls are nonblocking and
// complete at a synchronization call — here additionally at Flush.

// WinAllocate creates a window backed by a buffer the library allocates
// (MPI_Win_allocate). It is collective; every rank receives its own local
// buffer of the given size.
func (p *Proc) WinAllocate(size uint64, dispUnit uint32, c *Comm, name string) (*Win, *memory.Buffer) {
	buf := p.Alloc(size, name)
	w := p.WithCallDepth(1).WinCreate(buf, dispUnit, c)
	w.p = p // later window calls must log their own call sites
	return w, buf
}

// allRanksGroup returns the comm-relative ranks [0, size) as lock targets.
func (w *Win) allTargets() []int {
	out := make([]int, w.s.comm.Size())
	for i := range out {
		out[i] = i
	}
	return out
}

// LockAll opens a shared passive-target epoch to every rank of the window
// (MPI_Win_lock_all). MPI-3 defines lock_all as shared only.
func (w *Win) LockAll() {
	p := w.p
	w.s.comm.mustMember(p, "Win_lock_all")
	if w.lockAll {
		p.errorf("Win_lock_all", "lock_all epoch already open")
	}
	p.emit(trace.Event{Kind: trace.KindWinLockAll, Win: w.s.id}, 1)
	// Acquire in rank order to avoid lock-order inversions against
	// exclusive single locks.
	for _, t := range w.allTargets() {
		w.s.locks[t].acquire(p, "Win_lock_all", trace.LockShared)
	}
	w.lockAll = true
	p.world.metrics.epochOpen(epochLockAll)
}

// UnlockAll closes the lock_all epoch (MPI_Win_unlock_all), completing all
// pending operations.
func (w *Win) UnlockAll() {
	p := w.p
	if !w.lockAll {
		p.errorf("Win_unlock_all", "no lock_all epoch open")
	}
	var ops []*rmaOp
	for t, pend := range w.pendingAll {
		ops = append(ops, pend...)
		delete(w.pendingAll, t)
	}
	w.s.applyAll(ops)
	for _, t := range w.allTargets() {
		w.s.locks[t].release(p.rank)
	}
	w.lockAll = false
	p.world.metrics.epochClose(epochLockAll)
	p.emit(trace.Event{Kind: trace.KindWinUnlockAll, Win: w.s.id}, 1)
}

// Flush completes all pending operations to target, at both origin and
// target, without closing the epoch (MPI_Win_flush). The epoch may be a
// single lock or a lock_all.
func (w *Win) Flush(target int) {
	w.flush("Win_flush", target, trace.KindWinFlush)
}

// FlushAll completes all pending operations to every target
// (MPI_Win_flush_all).
func (w *Win) FlushAll() {
	w.flush("Win_flush_all", -1, trace.KindWinFlush)
}

// FlushLocal completes pending operations to target locally: the origin
// buffers may be reused, but completion at the target is only guaranteed
// by a later Flush/Unlock (MPI_Win_flush_local). The simulator applies the
// transfer (a legal, strongest implementation); the checker still treats
// target-side completion as pending.
func (w *Win) FlushLocal(target int) {
	w.flush("Win_flush_local", target, trace.KindWinFlushLocal)
}

// FlushLocalAll is FlushLocal to every target (MPI_Win_flush_local_all).
func (w *Win) FlushLocalAll() {
	w.flush("Win_flush_local_all", -1, trace.KindWinFlushLocal)
}

func (w *Win) flush(call string, target int, kind trace.Kind) {
	p := w.p
	if target >= w.s.comm.Size() {
		p.errorf(call, "target rank %d out of range", target)
	}
	inEpoch := func(t int) bool {
		return w.lockAll || w.lockHeld[t] != trace.LockNone
	}
	var ops []*rmaOp
	if target < 0 {
		for t := 0; t < w.s.comm.Size(); t++ {
			ops = append(ops, w.takePending(t)...)
		}
	} else {
		if !inEpoch(target) {
			p.errorf(call, "no passive-target epoch open to target %d", target)
		}
		ops = w.takePending(target)
	}
	w.s.applyAll(ops)
	p.emit(trace.Event{Kind: kind, Win: w.s.id, Target: int32(target)}, 2)
}

// takePending removes and returns the queued ops to target from both the
// single-lock and lock_all queues.
func (w *Win) takePending(target int) []*rmaOp {
	ops := w.pendingLock[target]
	delete(w.pendingLock, target)
	if w.pendingAll != nil {
		ops = append(ops, w.pendingAll[target]...)
		delete(w.pendingAll, target)
	}
	return ops
}

// GetAccumulate atomically combines originCount elements into the target
// window and returns the target's prior contents in the result buffer
// (MPI_Get_accumulate). With op == OpNone... use OpReplace for a swap; a
// pure atomic read is OpMin with identity — MPI's MPI_NO_OP is not
// modelled separately.
func (w *Win) GetAccumulate(origin *memory.Buffer, originOff uint64, originCount int, originType *Datatype,
	result *memory.Buffer, resultOff uint64, resultCount int, resultType *Datatype,
	target int, targetDisp uint64, targetCount int, targetType *Datatype, op trace.AccOp) {
	w.validateTransfer("Get_accumulate", target, originType, originCount, targetType, targetCount)
	if resultType.dm.TileBytes(resultCount) != targetType.dm.TileBytes(targetCount) {
		w.p.errorf("Get_accumulate", "result describes %d bytes but target %d bytes",
			resultType.dm.TileBytes(resultCount), targetType.dm.TileBytes(targetCount))
	}
	w.checkTargetRange("Get_accumulate", target, targetDisp, targetType, targetCount)
	if op == trace.OpNone {
		w.p.errorf("Get_accumulate", "missing reduction operation")
	}
	if op != trace.OpReplace && (originType.elem == 0 || originType.elem != targetType.elem) {
		w.p.errorf("Get_accumulate", "origin and target datatypes must share a predefined base type")
	}
	w.p.emit(trace.Event{
		Kind: trace.KindGetAccumulate, Win: w.s.id, Target: int32(target), AccOp: op,
		OriginAddr: origin.Addr(originOff), OriginType: originType.id, OriginCount: int32(originCount),
		TargetDisp: targetDisp, TargetType: targetType.id, TargetCount: int32(targetCount),
		ResultAddr: result.Addr(resultOff), ResultType: resultType.id, ResultCount: int32(resultCount),
	}, 1)
	w.queue("Get_accumulate", &rmaOp{
		kind:      trace.KindGetAccumulate,
		originBuf: origin, originOff: originOff, originType: originType, originCount: originCount,
		target: target, targetDisp: targetDisp, targetType: targetType, targetCount: targetCount,
		resultBuf: result, resultOff: resultOff, resultType: resultType, resultCount: resultCount,
		op: op,
	})
}

// FetchAndOp is the single-element Get_accumulate (MPI_Fetch_and_op).
func (w *Win) FetchAndOp(origin *memory.Buffer, originOff uint64,
	result *memory.Buffer, resultOff uint64,
	target int, targetDisp uint64, dtype *Datatype, op trace.AccOp) {
	w.validateTransfer("Fetch_and_op", target, dtype, 1, dtype, 1)
	w.checkTargetRange("Fetch_and_op", target, targetDisp, dtype, 1)
	if op == trace.OpNone {
		w.p.errorf("Fetch_and_op", "missing reduction operation")
	}
	if op != trace.OpReplace && dtype.elem == 0 {
		w.p.errorf("Fetch_and_op", "datatype must have a predefined base type")
	}
	w.p.emit(trace.Event{
		Kind: trace.KindFetchOp, Win: w.s.id, Target: int32(target), AccOp: op,
		OriginAddr: origin.Addr(originOff), OriginType: dtype.id, OriginCount: 1,
		TargetDisp: targetDisp, TargetType: dtype.id, TargetCount: 1,
		ResultAddr: result.Addr(resultOff), ResultType: dtype.id, ResultCount: 1,
	}, 1)
	w.queue("Fetch_and_op", &rmaOp{
		kind:      trace.KindFetchOp,
		originBuf: origin, originOff: originOff, originType: dtype, originCount: 1,
		target: target, targetDisp: targetDisp, targetType: dtype, targetCount: 1,
		resultBuf: result, resultOff: resultOff, resultType: dtype, resultCount: 1,
		op: op,
	})
}

// CompareAndSwap atomically replaces the target element with the origin
// value when it equals the compare value, returning the prior value in
// result (MPI_Compare_and_swap).
func (w *Win) CompareAndSwap(origin *memory.Buffer, originOff uint64,
	compare *memory.Buffer, compareOff uint64,
	result *memory.Buffer, resultOff uint64,
	target int, targetDisp uint64, dtype *Datatype) {
	w.validateTransfer("Compare_and_swap", target, dtype, 1, dtype, 1)
	w.checkTargetRange("Compare_and_swap", target, targetDisp, dtype, 1)
	w.p.emit(trace.Event{
		Kind: trace.KindCompareSwap, Win: w.s.id, Target: int32(target),
		OriginAddr: origin.Addr(originOff), OriginType: dtype.id, OriginCount: 1,
		TargetDisp: targetDisp, TargetType: dtype.id, TargetCount: 1,
		ResultAddr: result.Addr(resultOff), ResultType: dtype.id, ResultCount: 1,
	}, 1)
	// The compare value is read at issue time (it is a separate input, not
	// part of the deferred transfer in this implementation).
	cmp := pack(compare, compareOff, dtype, 1)
	w.queue("Compare_and_swap", &rmaOp{
		kind:      trace.KindCompareSwap,
		originBuf: origin, originOff: originOff, originType: dtype, originCount: 1,
		target: target, targetDisp: targetDisp, targetType: dtype, targetCount: 1,
		resultBuf: result, resultOff: resultOff, resultType: dtype, resultCount: 1,
		compare: cmp,
	})
}

// applyFetching executes the deferred fetching atomics; called from
// winShared.apply.
func (s *winShared) applyFetching(op *rmaOp) {
	tl := s.locals[op.target]
	byteOff := s.targetByteOff(op.target, op.targetDisp)
	size := op.targetType.dm.TileBytes(op.targetCount)
	switch op.kind {
	case trace.KindGetAccumulate, trace.KindFetchOp:
		packed := pack(op.originBuf, op.originOff, op.originType, op.originCount)
		old := make([]byte, size)
		// Read-modify-write the whole tile under one lock per segment run:
		// fetch old value, then combine.
		pos := 0
		for e := 0; e < op.targetCount; e++ {
			origin := byteOff + uint64(e)*op.targetType.dm.Extent
			for _, seg := range op.targetType.dm.Segments {
				chunk := packed[pos : pos+int(seg.Len)]
				oldChunk := old[pos : pos+int(seg.Len)]
				tl.buf.UpdateRaw(origin+seg.Disp, seg.Len, func(data []byte) {
					copy(oldChunk, data)
					if op.op == trace.OpReplace {
						copy(data, chunk)
					} else {
						combine(data, chunk, op.targetType.elem, op.op)
					}
				})
				pos += int(seg.Len)
			}
		}
		unpack(op.resultBuf, op.resultOff, op.resultType, op.resultCount, old)
	case trace.KindCompareSwap:
		newVal := pack(op.originBuf, op.originOff, op.originType, 1)
		old := make([]byte, size)
		tl.buf.UpdateRaw(byteOff, size, func(data []byte) {
			copy(old, data)
			if bytes.Equal(data, op.compare) {
				copy(data, newVal)
			}
		})
		unpack(op.resultBuf, op.resultOff, op.resultType, 1, old)
	}
}
