package mpi

import "repro/internal/trace"

// Re-exported trace types and constants so applications can be written
// against the mpi package alone, like MPI programs against mpi.h.

// LockType selects the MPI_Win_lock mode.
type LockType = trace.LockType

// AccOp is the reduction operation for Accumulate, Reduce, and Allreduce.
type AccOp = trace.AccOp

const (
	LockShared    = trace.LockShared
	LockExclusive = trace.LockExclusive

	OpSum     = trace.OpSum
	OpProd    = trace.OpProd
	OpMax     = trace.OpMax
	OpMin     = trace.OpMin
	OpReplace = trace.OpReplace
)
