package mpi

import (
	"testing"

	"repro/internal/trace"
)

func TestScan(t *testing.T) {
	err := Run(5, Options{}, func(p *Proc) error {
		send := p.Alloc(8, "s")
		recv := p.Alloc(8, "r")
		send.SetFloat64(0, float64(p.Rank()+1))
		p.Scan(p.CommWorld(), send, 0, recv, 0, 1, Float64, trace.OpSum)
		// Inclusive prefix sum of 1..rank+1.
		want := float64((p.Rank() + 1) * (p.Rank() + 2) / 2)
		if got := recv.Float64At(0); got != want {
			t.Errorf("rank %d scan = %g, want %g", p.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanProd(t *testing.T) {
	err := Run(4, Options{}, func(p *Proc) error {
		send := p.Alloc(4, "s")
		recv := p.Alloc(4, "r")
		send.SetInt32(0, 2)
		p.Scan(p.CommWorld(), send, 0, recv, 0, 1, Int32, trace.OpProd)
		want := int32(1) << (p.Rank() + 1) // 2^(rank+1)
		if got := recv.Int32At(0); got != want {
			t.Errorf("rank %d scan prod = %d, want %d", p.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitall(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		buf := p.Alloc(16, "b")
		if p.Rank() == 0 {
			var reqs []*Request
			buf.SetInt32(0, 10)
			buf.SetInt32(4, 20)
			reqs = append(reqs, p.Isend(p.CommWorld(), buf, 0, 1, Int32, 1, 1))
			reqs = append(reqs, p.Isend(p.CommWorld(), buf, 4, 1, Int32, 1, 2))
			p.Waitall(reqs)
		} else {
			r1 := p.Irecv(p.CommWorld(), buf, 0, 1, Int32, 0, 1)
			r2 := p.Irecv(p.CommWorld(), buf, 4, 1, Int32, 0, 2)
			sts := p.Waitall([]*Request{r1, r2})
			if buf.Int32At(0) != 10 || buf.Int32At(4) != 20 {
				t.Errorf("waitall payloads: %d %d", buf.Int32At(0), buf.Int32At(4))
			}
			if sts[0].Source != 0 || sts[1].Tag != 2 {
				t.Errorf("statuses: %+v", sts)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// PSCW epochs can be reopened repeatedly on one window.
func TestPSCWRepeatedEpochs(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		win := p.Alloc(8, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		other := 1 - p.Rank()
		g := NewGroup([]int{other})
		for i := 0; i < 5; i++ {
			w.Post(g)
			w.Start(g)
			if p.Rank() == 0 {
				src := p.Alloc(8, "src")
				src.SetInt64(0, int64(i))
				w.Put(src, 0, 1, Int64, 1, 0, 1, Int64)
			}
			w.Complete()
			w.WaitEpoch()
			p.Barrier(p.CommWorld())
			if p.Rank() == 1 {
				if got := win.Int64At(0); got != int64(i) {
					t.Errorf("epoch %d delivered %d", i, got)
				}
			}
			p.Barrier(p.CommWorld())
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
