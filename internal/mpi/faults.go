package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/faults"
)

// Fault injection and the fault-tolerant abort model.
//
// The simulator supports two models for a dying rank:
//
//   - Fail-stop (the default, matching MPI_Abort): any rank death aborts
//     the whole job; every blocked rank unwinds via the abort machinery
//     and Run returns the root-cause error.
//
//   - Fault-tolerant (Options.FaultTolerant, ULFM-flavored): an injected
//     crash kills only its own rank. A surviving rank learns of the death
//     when — and only when — one of its blocking calls *depends* on the
//     dead rank (a collective over a communicator containing it, a
//     receive from it, a lock it holds, a PSCW partner). That call then
//     raises a RankFailure instead of blocking forever, unwinding the
//     survivor, whose own death cascades to its dependents in turn. Ranks
//     with no dependency on any dead rank run to completion and emit
//     complete traces.
//
// Dependency-awareness is what keeps fault-tolerant runs deterministic:
// everything a rank did before its crash (eager message deliveries, lock
// releases, PSCW posts/completes, collective deposits) happens-before its
// failure flag is published, and every blocking wait re-checks its
// dependencies on each wakeup, scanning deliverable work first. So
// whether a survivor completes a call or receives a RankFailure depends
// only on program order, not on scheduling. The one exception is a
// wildcard receive (AnySource): like ULFM's MPI_ERR_PROC_FAILED_PENDING,
// it fails as soon as any member of its communicator has died, even if a
// live sender would eventually have matched — which may race with that
// sender.

// CrashError reports a rank stopped by an injected crash fault.
type CrashError struct {
	Rank int
	Call int // 1-based ordinal of the MPI call at which the rank crashed
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("mpi: rank %d crashed by fault injection at MPI call %d", e.Rank, e.Call)
}

// RankFailure is the ULFM-flavored error delivered to a surviving rank
// whose blocking call depended on a failed peer (fault-tolerant mode).
type RankFailure struct {
	Rank   int    // the surviving rank receiving the error
	Call   string // the MPI call that observed the failure
	Failed int    // the failed peer rank
}

func (e *RankFailure) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s failed: peer rank %d has died", e.Rank, e.Call, e.Failed)
}

// Degraded reports whether err — an error tree returned by Run — consists
// entirely of injected crashes and the rank failures they induced. Such a
// run completed under the fault-tolerant model with partial results: the
// surviving ranks' traces are intact and worth analyzing in salvage mode.
func Degraded(err error) bool {
	if err == nil {
		return false
	}
	sawCrash := false
	ok := true
	var walk func(error)
	walk = func(e error) {
		if joined, isJoin := e.(interface{ Unwrap() []error }); isJoin {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
			return
		}
		var ce *CrashError
		var rf *RankFailure
		switch {
		case errors.As(e, &ce):
			sawCrash = true
		case errors.As(e, &rf):
		default:
			ok = false
		}
	}
	walk(err)
	return ok && sawCrash
}

// crashPanic unwinds a rank killed by an injected crash fault.
type crashPanic struct{ call int }

// rankFailurePanic unwinds a surviving rank whose blocking call depended
// on a failed peer; Run converts it into the carried RankFailure.
type rankFailurePanic struct{ err *RankFailure }

// faultState is the world's fault-injection state; nil when no plan is
// configured, making every check a cheap pointer test.
type faultState struct {
	plan     *faults.Plan
	tolerant bool

	mu     sync.Mutex
	failed map[int]bool // world ranks that have died (crash or cascade)
	any    bool         // fast path: len(failed) > 0, read under mu only on slow path
}

func newFaultState(plan *faults.Plan, tolerant bool) *faultState {
	if plan == nil && !tolerant {
		return nil
	}
	return &faultState{plan: plan, tolerant: tolerant, failed: make(map[int]bool)}
}

// markFailed records a rank death and wakes every blocked waiter in the
// world so dependency checks re-run. Idempotent per rank.
func (w *World) markFailed(rank int) {
	fs := w.faults
	if fs == nil {
		return
	}
	fs.mu.Lock()
	already := fs.failed[rank]
	fs.failed[rank] = true
	fs.any = true
	fs.mu.Unlock()
	if already {
		return
	}
	w.metrics.rankFailed()
	w.abortMu.Lock()
	conds := append([]*sync.Cond(nil), w.conds...)
	w.abortMu.Unlock()
	for _, c := range conds {
		c.L.Lock()
		c.Broadcast()
		c.L.Unlock()
	}
}

// anyFailed is the fast path for the blocking-wait loops: false unless
// the world runs fault-tolerant and at least one rank has died.
func (w *World) anyFailed() bool {
	fs := w.faults
	if fs == nil || !fs.tolerant {
		return false
	}
	fs.mu.Lock()
	any := fs.any
	fs.mu.Unlock()
	return any
}

// failedOf returns a failed world rank among deps, or -1. Only meaningful
// after anyFailed returned true.
func (w *World) failedOf(deps []int) int {
	fs := w.faults
	if fs == nil {
		return -1
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, r := range deps {
		if fs.failed[r] {
			return r
		}
	}
	return -1
}

// rankIsFailed reports whether one world rank has died.
func (w *World) rankIsFailed(rank int) bool {
	fs := w.faults
	if fs == nil {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.failed[rank]
}

// failPeer delivers the ULFM-flavored failure for call to the calling
// rank by unwinding its goroutine; Run reports the RankFailure.
func (p *Proc) failPeer(call string, failedRank int) {
	panic(rankFailurePanic{&RankFailure{Rank: p.rank, Call: call, Failed: failedRank}})
}

// checkGroupFailure unwinds p when a member of the group (given as world
// ranks) has died; used inside blocking wait loops.
func (p *Proc) checkGroupFailure(call string, worldRanks []int) {
	if !p.world.anyFailed() {
		return
	}
	if fr := p.world.failedOf(worldRanks); fr >= 0 {
		p.failPeer(call, fr)
	}
}

// procFaults is one rank's fault-injection state. It lives behind a
// pointer so WithCallDepth's shallow Proc copies share the call counter.
type procFaults struct {
	calls   int         // MPI calls made so far by this rank
	crashAt int         // crash at this 1-based call ordinal; 0 = never
	rng     *faults.RNG // seeded yield stream; nil when yields are off
	yield   int         // percent chance of a yield per call
}

// injectFaults runs the per-call fault hooks: a planned crash at this
// rank's Nth MPI call, and a seeded random scheduler yield. Called at the
// top of emit, so a crashing call is neither counted nor traced.
func (p *Proc) injectFaults() {
	pf := p.faults
	pf.calls++
	if pf.crashAt > 0 && pf.calls >= pf.crashAt {
		p.world.metrics.faultInjected(faultCrash)
		panic(crashPanic{call: pf.calls})
	}
	if pf.rng != nil && pf.rng.Intn(100) < pf.yield {
		p.world.metrics.faultInjected(faultYield)
		runtime.Gosched()
	}
}

// setupFaults arms the per-rank fault state from the world's plan.
func (p *Proc) setupFaults() {
	fs := p.world.faults
	if fs == nil || fs.plan == nil {
		return
	}
	pf := &procFaults{}
	if call, ok := fs.plan.CrashAt(p.rank); ok {
		pf.crashAt = call
	}
	if fs.plan.Yield > 0 {
		pf.rng = faults.Derive(fs.plan.Seed, 0x79696c64 /* "yild" */, uint64(p.rank))
		pf.yield = fs.plan.Yield
	}
	if pf.crashAt > 0 || pf.rng != nil {
		p.faults = pf
	}
}

// scheduleBatch picks the completion order of one deterministic-sorted
// RMA batch according to the plan's schedule clauses, preserving each
// origin's program order (which MPI guarantees for accumulates). batch is
// the window's 0-based completion-batch ordinal. The clauses compose in a
// fixed order — reorder, then priorities with change points, then delays —
// and every decision is derived from the plan's seed and the batch
// identity, never from shared mutable state, so a schedule replays
// exactly.
func (w *World) scheduleBatch(winID int32, batch int, ops []*rmaOp) {
	fs := w.faults
	if fs == nil || fs.plan == nil || len(ops) < 2 {
		return
	}
	plan := fs.plan
	if plan.Reorder {
		w.reorderBatch(winID, ops)
	}
	if len(plan.Prio) > 0 || len(plan.Changes) > 0 {
		w.prioritizeBatch(batch, ops)
	}
	for _, d := range plan.Delays {
		if d.Batch == batch && delayOrigin(ops, d.Origin) {
			w.metrics.faultInjected(faultDelay)
		}
	}
}

// reorderBatch permutes the batch across origins with a random (but
// seed-derived) priority per origin. The stream is keyed by the batch
// fingerprint so every batch gets an independent, stable permutation.
func (w *World) reorderBatch(winID int32, ops []*rmaOp) {
	origins := batchOrigins(ops)
	if len(origins) < 2 {
		return // single origin: program order is mandatory, nothing to permute
	}
	rng := faults.Derive(w.faults.plan.Seed, uint64(uint32(winID)),
		uint64(ops[0].origin)<<32|uint64(uint32(ops[0].seq)), uint64(len(ops)))
	prio := make(map[int]uint64, len(origins))
	for _, o := range origins { // origins appear in sorted order after applyAll's sort
		prio[o] = rng.Uint64()
	}
	sort.SliceStable(ops, func(i, j int) bool {
		a, b := ops[i], ops[j]
		if prio[a.origin] != prio[b.origin] {
			return prio[a.origin] < prio[b.origin]
		}
		return a.seq < b.seq
	})
	w.metrics.faultInjected(faultReorder)
}

// prioritizeBatch orders the batch by explicit rank priorities (the PCT
// strategy of internal/explore): an origin with a higher priority value
// applies later, so its writes win. Ranks beyond the prio list use their
// rank as priority. Each change point whose batch ordinal has been
// reached demotes one seed-derived rank to apply first — the PCT priority
// drop, keyed by the change point's index so a replay demotes the same
// ranks.
func (w *World) prioritizeBatch(batch int, ops []*rmaOp) {
	plan := w.faults.plan
	origins := batchOrigins(ops)
	if len(origins) < 2 {
		return
	}
	prio := func(origin int) int {
		if origin < len(plan.Prio) {
			return plan.Prio[origin]
		}
		return origin
	}
	demoted := make(map[int]int)
	for i, c := range plan.Changes {
		if c <= batch {
			r := faults.Derive(plan.Seed, 0x63686770 /* "chgp" */, uint64(i)).Intn(len(w.procs))
			demoted[r] = -(i + 1)
		}
	}
	key := func(origin int) int {
		if d, ok := demoted[origin]; ok {
			return d
		}
		return prio(origin)
	}
	sort.SliceStable(ops, func(i, j int) bool {
		a, b := ops[i], ops[j]
		if key(a.origin) != key(b.origin) {
			return key(a.origin) < key(b.origin)
		}
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		return a.seq < b.seq
	})
	w.metrics.faultInjected(faultPrio)
}

// delayOrigin stably moves the given origin's operations to the back of
// the batch, reporting whether anything moved.
func delayOrigin(ops []*rmaOp, origin int) bool {
	kept := make([]*rmaOp, 0, len(ops))
	var delayed []*rmaOp
	for _, op := range ops {
		if op.origin == origin {
			delayed = append(delayed, op)
		} else {
			kept = append(kept, op)
		}
	}
	if len(delayed) == 0 || len(kept) == 0 {
		return false
	}
	copy(ops, append(kept, delayed...))
	return true
}

// batchOrigins returns the distinct origins of a batch in encounter order.
func batchOrigins(ops []*rmaOp) []int {
	origins := make([]int, 0, 4)
	seen := make(map[int]bool, 4)
	for _, op := range ops {
		if !seen[op.origin] {
			seen[op.origin] = true
			origins = append(origins, op.origin)
		}
	}
	return origins
}
