package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Hook observes the simulated MPI runtime. It is how the profiler
// (internal/profiler) attaches: MPICall mirrors the PMPI interposition
// layer of the paper's Profiler, and BufferAllocated gives the profiler the
// chance to attach load/store observers to buffers that the ST-Analyzer
// report marks relevant.
type Hook interface {
	// MPICall is invoked once per MPI call from the calling rank's
	// goroutine, before the call takes effect. ev carries all arguments and
	// the source location; Rank is set, Seq is zero (the hook assigns
	// per-rank sequence numbers so that call events interleave correctly
	// with the load/store events it observes itself).
	MPICall(p *Proc, ev trace.Event)

	// BufferAllocated is invoked when a rank allocates a tracked buffer.
	BufferAllocated(p *Proc, b *memory.Buffer)
}

// Options configures a simulated run.
type Options struct {
	// Hook receives runtime events; nil runs without any observation
	// (the "native" configuration of the paper's overhead experiments).
	Hook Hook

	// Timeout breaks deadlocked runs; zero means DefaultTimeout.
	Timeout time.Duration

	// Obs, when non-nil, receives the simulator's runtime metrics
	// (messages, collectives, RMA operations deferred and applied, epochs
	// opened and closed per sync mode). Nil disables the accounting with
	// no per-call cost beyond one pointer check.
	Obs *obs.Registry

	// Faults, when non-nil, injects the plan's simulator-level faults:
	// rank crashes at a fixed MPI-call ordinal, seeded scheduler yields,
	// and legal cross-origin reordering of RMA completion batches. All
	// injection is deterministic in the plan's seed.
	Faults *faults.Plan

	// FaultTolerant selects the ULFM-flavored abort model for injected
	// crashes: instead of aborting the job, a crash kills only its rank,
	// and surviving ranks receive a RankFailure from blocking calls that
	// depend on the dead rank. The run completes and emits the surviving
	// ranks' traces. See internal/mpi/faults.go for the model.
	FaultTolerant bool
}

// DefaultTimeout bounds a run when Options.Timeout is zero. Buggy MPI
// programs deadlock easily; the simulator turns a deadlock into an error
// rather than a hung test suite.
const DefaultTimeout = 2 * time.Minute

// World is one simulated MPI job.
type World struct {
	procs   []*Proc
	hook    Hook
	metrics *simMetrics // nil when Options.Obs is nil

	mu         sync.Mutex
	nextCommID int32
	nextWinID  int32

	// Abort machinery: when a rank dies (usage error, panic, or a body
	// returning an error), the job aborts like MPI_Abort — every blocking
	// wait in the runtime wakes up and unwinds, so Run returns promptly
	// instead of hitting the deadlock watchdog.
	aborted atomic.Bool
	abortMu sync.Mutex
	conds   []*sync.Cond

	// faults holds the injection plan and the failed-rank set of the
	// fault-tolerant model; nil when no plan is configured.
	faults *faultState
}

// abortPanic unwinds a rank blocked in the runtime when the job aborts.
type abortPanic struct{}

// addCond registers a condition variable to be broadcast on abort.
func (w *World) addCond(c *sync.Cond) {
	w.abortMu.Lock()
	w.conds = append(w.conds, c)
	w.abortMu.Unlock()
	if w.aborted.Load() {
		c.L.Lock()
		c.Broadcast()
		c.L.Unlock()
	}
}

// abort marks the job dead and wakes every registered waiter. Broadcasting
// under each cond's own lock closes the check-then-wait window in waiters.
func (w *World) abort() {
	if !w.aborted.CompareAndSwap(false, true) {
		return
	}
	w.abortMu.Lock()
	conds := append([]*sync.Cond(nil), w.conds...)
	w.abortMu.Unlock()
	for _, c := range conds {
		c.L.Lock()
		c.Broadcast()
		c.L.Unlock()
	}
}

// Run executes body on n ranks and waits for all of them. It returns the
// joined errors of all ranks (body results, usage errors, and panics), or
// a timeout error if the job deadlocks.
func Run(n int, opts Options, body func(p *Proc) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size %d must be positive", n)
	}
	w := &World{hook: opts.Hook, metrics: newSimMetrics(opts.Obs), nextCommID: 1} // comm id 0 is the world
	w.faults = newFaultState(opts.Faults, opts.FaultTolerant)
	w.procs = make([]*Proc, n)
	worldGroup := identityGroup(n)
	worldComm := newComm(w, 0, worldGroup)
	for i := 0; i < n; i++ {
		w.procs[i] = &Proc{
			world:  w,
			rank:   i,
			space:  memory.NewAddressSpace(),
			mail:   newMailbox(w),
			comm:   worldComm,
			status: &procStatus{},
		}
		w.procs[i].nextTypeID = trace.TypeUserBase
		w.procs[i].setupFaults()
	}

	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}

	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		p := w.procs[i]
		go func() {
			defer func() {
				if r := recover(); r != nil {
					p.status.done.Store(true)
					switch v := r.(type) {
					case abortPanic:
						// Collateral unwind of a rank blocked in the runtime
						// when a peer aborted; the root cause is reported by
						// the aborting rank.
						errc <- nil
					case crashPanic:
						// Injected crash fault. Fault-tolerant: only this rank
						// dies, dependents learn of it through markFailed.
						// Fail-stop: the whole job aborts, like MPI_Abort.
						w.markFailed(p.rank)
						if w.faults == nil || !w.faults.tolerant {
							w.abort()
						}
						errc <- &CrashError{Rank: p.rank, Call: v.call}
					case rankFailurePanic:
						// This rank's blocking call depended on a dead peer and
						// unwound; its own death cascades to its dependents.
						w.markFailed(p.rank)
						errc <- v.err
					case *UsageError:
						w.abort()
						errc <- v
					default:
						w.abort()
						buf := make([]byte, 8192)
						buf = buf[:runtime.Stack(buf, false)]
						errc <- fmt.Errorf("mpi: rank %d panicked: %v\n%s", p.rank, r, buf)
					}
					return
				}
			}()
			err := body(p)
			p.status.done.Store(true)
			if err != nil {
				w.abort()
			}
			errc <- err
		}()
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var errs []error
	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			if err != nil {
				errs = append(errs, err)
			}
		case <-timer.C:
			return fmt.Errorf("mpi: job deadlocked: %d of %d ranks did not finish within %v%s%s",
				n-i, n, timeout, w.stuckReport(), joinedSuffix(errs))
		}
	}
	return errors.Join(errs...)
}

// abortedNow reports whether the job has aborted. Every blocking wait loop
// in the runtime checks it at the top of each iteration and unwinds with
// abortPanic (releasing its lock first).
func (w *World) abortedNow() bool { return w.aborted.Load() }

func joinedSuffix(errs []error) string {
	if len(errs) == 0 {
		return ""
	}
	return fmt.Sprintf(" (finished ranks reported: %v)", errors.Join(errs...))
}

// UsageError reports misuse of the MPI interface by the application: the
// simulated analogue of an MPI error or hang.
type UsageError struct {
	Rank int
	Call string
	Msg  string
}

func (e *UsageError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s: %s", e.Rank, e.Call, e.Msg)
}

// Proc is one simulated MPI rank. All methods must be called from the
// rank's own goroutine (the body function passed to Run).
type Proc struct {
	world *World
	rank  int
	space *memory.AddressSpace
	mail  *mailbox
	comm  *Comm // MPI_COMM_WORLD

	nextTypeID int32
	nextReqID  int32
	callDepth  int32 // extra caller frames for location capture (see WithCallDepth)

	// faults is the rank's fault-injection state (nil when no plan is
	// armed); it lives behind a pointer so that WithCallDepth's shallow
	// Proc copies share the MPI-call counter. Touched only by the rank's
	// own goroutine.
	faults *procFaults

	// status carries the watchdog diagnostics; it lives behind a pointer so
	// that WithCallDepth's shallow Proc copies share it.
	status *procStatus
}

// procStatus records where a rank currently is, for the deadlock
// watchdog's diagnostics.
type procStatus struct {
	// blockedOn names the call the rank is blocked in; nil when running.
	blockedOn atomic.Pointer[string]
	done      atomic.Bool
}

// enterBlocked records that the rank is about to block in the named call
// and returns a func restoring the running state.
func (p *Proc) enterBlocked(call string) func() {
	p.status.blockedOn.Store(&call)
	return func() { p.status.blockedOn.Store(nil) }
}

// stuckReport lists unfinished ranks and where they are blocked.
func (w *World) stuckReport() string {
	var sb []byte
	for _, p := range w.procs {
		if p.status.done.Load() {
			continue
		}
		where := "running"
		if s := p.status.blockedOn.Load(); s != nil {
			where = "blocked in " + *s
		}
		sb = fmt.Appendf(sb, "\n  rank %d: %s", p.rank, where)
	}
	return string(sb)
}

// Rank returns the world rank of the process.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return len(p.world.procs) }

// CommWorld returns the predefined world communicator.
func (p *Proc) CommWorld() *Comm { return p.comm }

// Space returns the rank's simulated address space.
func (p *Proc) Space() *memory.AddressSpace { return p.space }

// Alloc allocates a tracked buffer in the rank's address space and reports
// it to the hook so the profiler can decide whether to observe it.
func (p *Proc) Alloc(size uint64, name string) *memory.Buffer {
	b := p.space.Alloc(size, name)
	if p.world.hook != nil {
		p.world.hook.BufferAllocated(p, b)
	}
	return b
}

// AllocFloat64 allocates a tracked buffer holding n float64 values.
func (p *Proc) AllocFloat64(n int, name string) *memory.Buffer {
	return p.Alloc(uint64(n)*8, name)
}

// AllocInt32 allocates a tracked buffer holding n int32 values.
func (p *Proc) AllocInt32(n int, name string) *memory.Buffer {
	return p.Alloc(uint64(n)*4, name)
}

// WithCallDepth adds extra stack frames to skip when capturing the source
// location of MPI calls, for application-side wrappers that forward to the
// MPI interface. It returns a shallow copy bound to the same rank.
func (p *Proc) WithCallDepth(extra int) *Proc {
	q := *p
	q.callDepth += int32(extra)
	return &q
}

func (p *Proc) errorf(call, format string, args ...any) {
	panic(&UsageError{Rank: p.rank, Call: call, Msg: fmt.Sprintf(format, args...)})
}

// emit fills in the caller location and rank and hands the event to the
// hook. skip is the number of frames between the application call site and
// emit's caller. Fault injection runs first, so a crashing call is
// neither counted nor traced.
func (p *Proc) emit(ev trace.Event, skip int) {
	if p.faults != nil {
		p.injectFaults()
	}
	p.world.metrics.record(ev.Kind, int32(p.rank))
	if p.world.hook == nil {
		return
	}
	ev.Rank = int32(p.rank)
	loc := memory.CallerLoc(skip + 1 + int(p.callDepth))
	ev.File, ev.Line, ev.Func = loc.File, int32(loc.Line), loc.Func
	p.world.hook.MPICall(p, ev)
}

// other returns the Proc for a world rank; used by p2p and RMA internals.
func (w *World) proc(rank int) *Proc { return w.procs[rank] }

// allocCommID hands out a fresh communicator id.
func (w *World) allocCommID() int32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := w.nextCommID
	w.nextCommID++
	return id
}

// allocWinID hands out a fresh window id.
func (w *World) allocWinID() int32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := w.nextWinID
	w.nextWinID++
	return id
}

// allocTypeID hands out a fresh per-rank user datatype id.
func (p *Proc) allocTypeID() int32 {
	return atomic.AddInt32(&p.nextTypeID, 1) - 1
}

// allocReqID hands out a fresh per-rank request id.
func (p *Proc) allocReqID() int32 {
	return atomic.AddInt32(&p.nextReqID, 1)
}
