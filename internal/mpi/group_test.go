package mpi

import (
	"reflect"
	"testing"
)

func TestGroupBasics(t *testing.T) {
	g := NewGroup([]int{4, 2, 7})
	if g.Size() != 3 {
		t.Fatalf("Size = %d", g.Size())
	}
	if g.Rank(2) != 1 || g.Rank(5) != -1 {
		t.Error("Rank lookup wrong")
	}
	if g.WorldRank(0) != 4 || g.WorldRank(2) != 7 {
		t.Error("WorldRank wrong")
	}
	if !g.Contains(7) || g.Contains(0) {
		t.Error("Contains wrong")
	}
	if !reflect.DeepEqual(g.Ranks(), []int{4, 2, 7}) {
		t.Error("Ranks order not preserved")
	}
}

func TestGroupDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate rank must panic")
		}
	}()
	NewGroup([]int{1, 1})
}

func TestGroupInclExcl(t *testing.T) {
	g := identityGroup(6)
	sub := g.Incl([]int{5, 0, 3})
	if !reflect.DeepEqual(sub.Ranks(), []int{5, 0, 3}) {
		t.Errorf("Incl = %v", sub.Ranks())
	}
	rest := g.Excl([]int{0, 2, 4})
	if !reflect.DeepEqual(rest.Ranks(), []int{1, 3, 5}) {
		t.Errorf("Excl = %v", rest.Ranks())
	}
}

func TestGroupSetOps(t *testing.T) {
	a := NewGroup([]int{0, 1, 2})
	b := NewGroup([]int{2, 3})
	if !reflect.DeepEqual(a.Union(b).Ranks(), []int{0, 1, 2, 3}) {
		t.Errorf("Union = %v", a.Union(b).Ranks())
	}
	if !reflect.DeepEqual(a.Intersect(b).Ranks(), []int{2}) {
		t.Errorf("Intersect = %v", a.Intersect(b).Ranks())
	}
}

func TestGroupTranslate(t *testing.T) {
	a := NewGroup([]int{3, 5, 7})
	b := NewGroup([]int{7, 3})
	got := a.Translate([]int{0, 1, 2}, b)
	if !reflect.DeepEqual(got, []int{1, -1, 0}) {
		t.Errorf("Translate = %v", got)
	}
}

func TestGroupWorldRankPanics(t *testing.T) {
	g := identityGroup(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range WorldRank must panic")
		}
	}()
	g.WorldRank(5)
}
