package mpi

import (
	"fmt"
	"sort"
)

// Group is an ordered set of world ranks, the MPI process-group abstraction.
// Groups are immutable; the set operations return new groups.
type Group struct {
	ranks []int // world ranks in group-rank order
}

func identityGroup(n int) *Group {
	g := &Group{ranks: make([]int, n)}
	for i := range g.ranks {
		g.ranks[i] = i
	}
	return g
}

// NewGroup builds a group from world ranks in the given order.
// It panics if a rank repeats.
func NewGroup(worldRanks []int) *Group {
	seen := make(map[int]bool, len(worldRanks))
	ranks := make([]int, len(worldRanks))
	for i, r := range worldRanks {
		if seen[r] {
			panic(fmt.Sprintf("mpi: duplicate rank %d in group", r))
		}
		seen[r] = true
		ranks[i] = r
	}
	return &Group{ranks: ranks}
}

// Size returns the number of processes in the group.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns a copy of the member world ranks in group-rank order.
func (g *Group) Ranks() []int {
	out := make([]int, len(g.ranks))
	copy(out, g.ranks)
	return out
}

// Rank translates a world rank to the group-relative rank, or -1 if the
// process is not a member.
func (g *Group) Rank(world int) int {
	for i, r := range g.ranks {
		if r == world {
			return i
		}
	}
	return -1
}

// WorldRank translates a group-relative rank to the world rank.
func (g *Group) WorldRank(rel int) int {
	if rel < 0 || rel >= len(g.ranks) {
		panic(fmt.Sprintf("mpi: group rank %d out of range [0,%d)", rel, len(g.ranks)))
	}
	return g.ranks[rel]
}

// Contains reports whether the world rank is a member.
func (g *Group) Contains(world int) bool { return g.Rank(world) >= 0 }

// Incl returns the subgroup of the given group-relative ranks, in that
// order (MPI_Group_incl).
func (g *Group) Incl(rels []int) *Group {
	out := make([]int, len(rels))
	for i, rel := range rels {
		out[i] = g.WorldRank(rel)
	}
	return NewGroup(out)
}

// Excl returns the group without the given group-relative ranks, preserving
// order (MPI_Group_excl).
func (g *Group) Excl(rels []int) *Group {
	drop := make(map[int]bool, len(rels))
	for _, rel := range rels {
		drop[g.WorldRank(rel)] = true
	}
	var out []int
	for _, r := range g.ranks {
		if !drop[r] {
			out = append(out, r)
		}
	}
	return NewGroup(out)
}

// Union returns members of g followed by members of o not in g
// (MPI_Group_union ordering).
func (g *Group) Union(o *Group) *Group {
	out := append([]int(nil), g.ranks...)
	for _, r := range o.ranks {
		if !g.Contains(r) {
			out = append(out, r)
		}
	}
	return NewGroup(out)
}

// Intersect returns members of g that are also in o, in g's order
// (MPI_Group_intersection).
func (g *Group) Intersect(o *Group) *Group {
	var out []int
	for _, r := range g.ranks {
		if o.Contains(r) {
			out = append(out, r)
		}
	}
	return NewGroup(out)
}

// Translate maps group-relative ranks of g to the corresponding relative
// ranks in o, with -1 for processes not in o (MPI_Group_translate_ranks).
func (g *Group) Translate(rels []int, o *Group) []int {
	out := make([]int, len(rels))
	for i, rel := range rels {
		out[i] = o.Rank(g.WorldRank(rel))
	}
	return out
}

// sortedCopy returns the member ranks in ascending world order; used by
// deterministic internal iteration.
func (g *Group) sortedCopy() []int {
	out := g.Ranks()
	sort.Ints(out)
	return out
}

func (g *Group) String() string { return fmt.Sprintf("group%v", g.ranks) }
