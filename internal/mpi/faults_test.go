package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/memory"
	"repro/internal/trace"
)

func mustPlan(t *testing.T, dsl string) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(dsl)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A fault-tolerant crash kills only its rank; a survivor blocked on the
// dead rank receives a RankFailure instead of hanging or aborting.
func TestFaultTolerantCrashDeliversRankFailure(t *testing.T) {
	err := Run(2, Options{Faults: mustPlan(t, "crash=1@5"), FaultTolerant: true}, func(p *Proc) error {
		for i := 0; i < 10; i++ {
			p.Barrier(p.CommWorld())
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error from crashed run")
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Rank != 1 || ce.Call != 5 {
		t.Fatalf("want CrashError{Rank:1, Call:5} in %v", err)
	}
	var rf *RankFailure
	if !errors.As(err, &rf) || rf.Rank != 0 || rf.Failed != 1 || rf.Call != "Barrier" {
		t.Fatalf("want RankFailure{Rank:0, Failed:1, Call:Barrier} in %v", err)
	}
	if !Degraded(err) {
		t.Fatalf("Degraded(%v) = false, want true", err)
	}
}

// Ranks with no dependency on the dead rank run to completion under the
// fault-tolerant model.
func TestFaultTolerantIndependentRanksComplete(t *testing.T) {
	err := Run(3, Options{Faults: mustPlan(t, "crash=2@1"), FaultTolerant: true}, func(p *Proc) error {
		c := p.CommWorld()
		buf := p.AllocFloat64(1, "b")
		switch p.Rank() {
		case 0:
			p.Send(c, buf, 0, 1, Float64, 1, 0)
		case 1:
			p.Recv(c, buf, 0, 1, Float64, 0, 0)
		case 2:
			p.Send(c, buf, 0, 1, Float64, 0, 99) // crashes before sending
		}
		return nil
	})
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Rank != 2 {
		t.Fatalf("want CrashError for rank 2 in %v", err)
	}
	var rf *RankFailure
	if errors.As(err, &rf) {
		t.Fatalf("independent ranks must complete, got %v", err)
	}
}

// A crash mid-PSCW epoch must unwind the partner promptly in both abort
// models: the exposed rank blocked in Win_wait may not ride out the
// deadlock watchdog.
func TestPSCWCrashUnwindsPartners(t *testing.T) {
	for _, tolerant := range []bool{false, true} {
		name := "failstop"
		if tolerant {
			name = "tolerant"
		}
		t.Run(name, func(t *testing.T) {
			// Rank 0 crashes at its 4th MPI call — Win_complete, after
			// Win_create(1), Win_start(2), Put(3) — leaving rank 1's
			// exposure epoch forever open.
			start := time.Now()
			err := Run(2, Options{
				Faults:        mustPlan(t, "crash=0@4"),
				FaultTolerant: tolerant,
				Timeout:       30 * time.Second,
			}, func(p *Proc) error {
				buf := p.AllocFloat64(4, "buf")
				w := p.WinCreate(buf, 8, p.CommWorld())
				peer := 1 - p.Rank()
				g := NewGroup([]int{peer})
				if p.Rank() == 0 {
					w.Start(g)
					w.Put(buf, 0, 1, Float64, 1, 0, 1, Float64)
					w.Complete()
				} else {
					w.Post(g)
					w.WaitEpoch()
				}
				w.Free()
				return nil
			})
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("partners unwound only after %v", elapsed)
			}
			if err == nil || strings.Contains(err.Error(), "deadlocked") {
				t.Fatalf("want prompt crash error, got %v", err)
			}
			var ce *CrashError
			if !errors.As(err, &ce) || ce.Rank != 0 {
				t.Fatalf("want CrashError for rank 0 in %v", err)
			}
			var rf *RankFailure
			if tolerant {
				if !errors.As(err, &rf) || rf.Rank != 1 || rf.Call != "Win_wait" {
					t.Fatalf("want RankFailure{Rank:1, Call:Win_wait} in %v", err)
				}
			}
		})
	}
}

// The deadlock watchdog's report names each stuck rank and the call it is
// blocked in.
func TestStuckReportNamesBlockedCall(t *testing.T) {
	err := Run(2, Options{Timeout: 100 * time.Millisecond}, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Barrier(p.CommWorld()) // rank 0 never joins
		}
		return nil
	})
	if err == nil {
		t.Fatal("want deadlock error")
	}
	for _, want := range []string{"deadlocked", "rank 1: blocked in Barrier"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("stuck report %q missing %q", err, want)
		}
	}
}

// Degraded classifies error trees: true only for pure crash/rank-failure
// trees with at least one crash.
func TestDegradedClassifier(t *testing.T) {
	crash := &CrashError{Rank: 1, Call: 5}
	rf := &RankFailure{Rank: 0, Call: "Barrier", Failed: 1}
	other := fmt.Errorf("disk on fire")
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{crash, true},
		{rf, false}, // failure without a crash is not an injected degradation
		{other, false},
		{errors.Join(crash, rf), true},
		{errors.Join(crash, rf, rf), true},
		{errors.Join(crash, other), false},
		{errors.Join(rf, fmt.Errorf("wrapped: %w", crash)), true},
	}
	for i, c := range cases {
		if got := Degraded(c.err); got != c.want {
			t.Errorf("case %d: Degraded(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}

// Same seed, same reorder faults: the simulated memory outcome of racing
// Puts must reproduce bit-for-bit.
func TestReorderDeterminism(t *testing.T) {
	run := func(seed uint64) float64 {
		var got float64
		err := Run(3, Options{Faults: mustPlan(t, fmt.Sprintf("seed=%d,reorder", seed))}, func(p *Proc) error {
			buf := p.AllocFloat64(1, "cell")
			buf.SetFloat64(0, float64(p.Rank()))
			w := p.WinCreate(buf, 8, p.CommWorld())
			w.Fence(AssertNone)
			if p.Rank() != 0 {
				// Both non-root ranks race a Put into rank 0's cell; the
				// reorder fault permutes which lands last.
				w.Put(buf, 0, 1, Float64, 0, 0, 1, Float64)
			}
			w.Fence(AssertNone)
			if p.Rank() == 0 {
				got = buf.Float64At(0)
			}
			w.Fence(AssertNone)
			w.Free()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	for _, seed := range []uint64{1, 2, 7, 99} {
		a, b := run(seed), run(seed)
		if a != b {
			t.Fatalf("seed %d: outcomes %v and %v differ", seed, a, b)
		}
	}
}

// A crashing call is neither counted nor traced: the fault fires at the
// top of emit, so the rank's last visible action precedes the crash call.
func TestCrashCallNotObserved(t *testing.T) {
	var calls [2]int
	hook := countingHook{onCall: func(rank int32) { calls[rank]++ }}
	err := Run(2, Options{Hook: hook, Faults: mustPlan(t, "crash=1@3"), FaultTolerant: true}, func(p *Proc) error {
		for i := 0; i < 5; i++ {
			p.Barrier(p.CommWorld())
		}
		return nil
	})
	if !Degraded(err) {
		t.Fatalf("want degraded run, got %v", err)
	}
	if calls[1] != 2 {
		t.Fatalf("crashed rank emitted %d calls, want 2 (crash at call 3 untraced)", calls[1])
	}
}

type countingHook struct {
	onCall func(rank int32)
}

func (h countingHook) MPICall(p *Proc, ev trace.Event)          { h.onCall(ev.Rank) }
func (h countingHook) BufferAllocated(p *Proc, b *memory.Buffer) {}
