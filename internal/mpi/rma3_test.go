package mpi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

func TestWinAllocate(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		w, buf := p.WinAllocate(64, 8, p.CommWorld(), "allocwin")
		if buf.Size() != 64 || w.LocalBuffer() != buf {
			t.Error("WinAllocate buffer wrong")
		}
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			src := p.AllocFloat64(1, "src")
			src.SetFloat64(0, 3.25)
			w.Put(src, 0, 1, Float64, 1, 0, 1, Float64)
		}
		w.Fence(AssertNone)
		if p.Rank() == 1 && buf.Float64At(0) != 3.25 {
			t.Errorf("put into allocated window = %v", buf.Float64At(0))
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockAllFlush(t *testing.T) {
	err := Run(3, Options{}, func(p *Proc) error {
		w, buf := p.WinAllocate(8, 8, p.CommWorld(), "law")
		p.Barrier(p.CommWorld())
		w.LockAll()
		if p.Rank() == 0 {
			src := p.AllocFloat64(1, "src")
			for t := 1; t < p.Size(); t++ {
				src.SetFloat64(0, float64(10*t))
				w.Put(src, 0, 1, Float64, t, 0, 1, Float64)
				w.Flush(t) // completes at the target before moving on
				src.SetFloat64(0, 0)
			}
		}
		w.UnlockAll()
		p.Barrier(p.CommWorld())
		if p.Rank() != 0 {
			if got := buf.Float64At(0); got != float64(10*p.Rank()) {
				t.Errorf("rank %d got %v", p.Rank(), got)
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Regression: operations on a WinAllocate window must log their own call
// sites, not inherit WinAllocate's extra caller depth.
func TestWinAllocateOpLocations(t *testing.T) {
	h := newRecordingHook()
	err := Run(2, Options{Hook: h}, func(p *Proc) error {
		w, _ := p.WinAllocate(16, 8, p.CommWorld(), "w")
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			src := p.AllocFloat64(1, "src")
			w.Put(src, 0, 1, Float64, 1, 0, 1, Float64)
		}
		w.Fence(AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range h.eventsOf(0, trace.KindPut) {
		if ev.Loc() == "?" || ev.File == "" || !strings.HasSuffix(ev.File, "rma3_test.go") {
			t.Errorf("put location = %s (%s)", ev.Loc(), ev.File)
		}
	}
}

func TestFlushWithoutEpochFails(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		w, _ := p.WinAllocate(8, 8, p.CommWorld(), "w")
		if p.Rank() == 0 {
			w.Flush(1)
		}
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Errorf("err = %v", err)
	}
}

func TestFetchAndOpAtomicCounter(t *testing.T) {
	// The canonical MPI-3 pattern: a shared counter incremented with
	// Fetch_and_op. Every rank must see a distinct old value.
	const n = 8
	const perRank = 10
	var seen [n * perRank]atomic.Bool
	err := Run(n, Options{}, func(p *Proc) error {
		w, buf := p.WinAllocate(8, 8, p.CommWorld(), "counter")
		if p.Rank() == 0 {
			buf.SetInt64(0, 0)
		}
		p.Barrier(p.CommWorld())
		one := p.Alloc(8, "one")
		one.SetInt64(0, 1)
		old := p.Alloc(8, "old")
		for i := 0; i < perRank; i++ {
			w.LockAll()
			w.FetchAndOp(one, 0, old, 0, 0, 0, Int64, trace.OpSum)
			w.UnlockAll()
			got := old.Int64At(0)
			if got < 0 || got >= n*perRank {
				t.Errorf("fetched %d out of range", got)
				continue
			}
			if seen[got].Swap(true) {
				t.Errorf("value %d fetched twice: lost update", got)
			}
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			if total := buf.Int64At(0); total != n*perRank {
				t.Errorf("counter = %d, want %d", total, n*perRank)
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetAccumulate(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		w, buf := p.WinAllocate(16, 8, p.CommWorld(), "gac")
		if p.Rank() == 1 {
			buf.SetFloat64(0, 100)
			buf.SetFloat64(8, 200)
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			add := p.AllocFloat64(2, "add")
			add.SetFloat64(0, 1)
			add.SetFloat64(8, 2)
			res := p.AllocFloat64(2, "res")
			w.Lock(trace.LockShared, 1)
			w.GetAccumulate(add, 0, 2, Float64, res, 0, 2, Float64, 1, 0, 2, Float64, trace.OpSum)
			w.Unlock(1)
			if res.Float64At(0) != 100 || res.Float64At(8) != 200 {
				t.Errorf("old values = %v %v", res.Float64At(0), res.Float64At(8))
			}
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 1 {
			if buf.Float64At(0) != 101 || buf.Float64At(8) != 202 {
				t.Errorf("accumulated = %v %v", buf.Float64At(0), buf.Float64At(8))
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetAccumulateDeferred(t *testing.T) {
	// Like Put/Get, fetching atomics complete at the closing sync: the
	// result buffer is stale inside the epoch.
	err := Run(2, Options{}, func(p *Proc) error {
		w, buf := p.WinAllocate(8, 8, p.CommWorld(), "gad")
		if p.Rank() == 1 {
			buf.SetInt64(0, 7)
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			one := p.Alloc(8, "one")
			one.SetInt64(0, 1)
			res := p.Alloc(8, "res")
			res.SetInt64(0, -1)
			w.Lock(trace.LockShared, 1)
			w.FetchAndOp(one, 0, res, 0, 1, 0, Int64, trace.OpSum)
			if got := res.Int64At(0); got != -1 {
				t.Errorf("result delivered eagerly: %d", got)
			}
			w.Unlock(1)
			if got := res.Int64At(0); got != 7 {
				t.Errorf("result after unlock = %d", got)
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompareAndSwap(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		w, buf := p.WinAllocate(8, 8, p.CommWorld(), "cas")
		if p.Rank() == 1 {
			buf.SetInt64(0, 5)
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			newVal := p.Alloc(8, "new")
			cmp := p.Alloc(8, "cmp")
			res := p.Alloc(8, "res")
			// Successful CAS: 5 → 9.
			newVal.SetInt64(0, 9)
			cmp.SetInt64(0, 5)
			w.Lock(trace.LockShared, 1)
			w.CompareAndSwap(newVal, 0, cmp, 0, res, 0, 1, 0, Int64)
			w.Unlock(1)
			if res.Int64At(0) != 5 {
				t.Errorf("cas old = %d", res.Int64At(0))
			}
			// Failing CAS: compare 5 again, target is now 9.
			w.Lock(trace.LockShared, 1)
			w.CompareAndSwap(newVal, 0, cmp, 0, res, 0, 1, 0, Int64)
			w.Unlock(1)
			if res.Int64At(0) != 9 {
				t.Errorf("failed cas old = %d", res.Int64At(0))
			}
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 1 && buf.Int64At(0) != 9 {
			t.Errorf("target = %d, want 9 (second CAS must fail)", buf.Int64At(0))
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockAllStateErrors(t *testing.T) {
	err := Run(1, Options{}, func(p *Proc) error {
		w, _ := p.WinAllocate(8, 8, p.CommWorld(), "w")
		w.UnlockAll()
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) || ue.Call != "Win_unlock_all" {
		t.Errorf("err = %v", err)
	}
	err = Run(1, Options{}, func(p *Proc) error {
		w, _ := p.WinAllocate(8, 8, p.CommWorld(), "w")
		w.LockAll()
		w.LockAll()
		return nil
	})
	if !errors.As(err, &ue) || ue.Call != "Win_lock_all" {
		t.Errorf("err = %v", err)
	}
}

func TestFlushLocalAllowsOriginReuse(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		w, buf := p.WinAllocate(16, 8, p.CommWorld(), "flw")
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			src := p.AllocFloat64(1, "src")
			w.LockAll()
			src.SetFloat64(0, 1)
			w.Put(src, 0, 1, Float64, 1, 0, 1, Float64)
			w.FlushLocal(1)
			src.SetFloat64(0, 2) // legal: origin buffer complete
			w.Put(src, 0, 1, Float64, 1, 1, 1, Float64)
			w.UnlockAll()
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 1 {
			if buf.Float64At(0) != 1 || buf.Float64At(8) != 2 {
				t.Errorf("flush_local values: %v %v", buf.Float64At(0), buf.Float64At(8))
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
