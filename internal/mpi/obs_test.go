package mpi

import (
	"testing"

	"repro/internal/obs"
)

// TestSimMetrics pins the simulator-side counters: messages, collectives,
// RMA deferral/application, and epoch transitions per sync mode.
func TestSimMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	err := Run(2, Options{Obs: reg}, func(p *Proc) error {
		buf := p.Alloc(8, "x")
		if p.Rank() == 0 {
			p.Send(p.CommWorld(), buf, 0, 1, Int64, 1, 7)
		} else {
			p.Recv(p.CommWorld(), buf, 0, 1, Int64, 0, 7)
		}
		p.Barrier(p.CommWorld())

		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		// Fence epoch with one Put per rank.
		w.Fence(AssertNone)
		src := p.Alloc(8, "src")
		w.Put(src, 0, 1, Int64, (p.Rank()+1)%2, 0, 1, Int64)
		w.Fence(AssertNone)
		// Lock epoch.
		w.Lock(LockShared, 0)
		w.Unlock(0)
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	check := func(name string, want int64, kv ...string) {
		t.Helper()
		if got := snap.CounterValue(name, kv...); got != want {
			t.Errorf("%s{%v} = %d, want %d", name, kv, got, want)
		}
	}
	check("mcchecker_sim_messages_total", 1, "dir", "sent")
	check("mcchecker_sim_messages_total", 1, "dir", "received")
	check("mcchecker_sim_collectives_total", 2, "op", "Barrier")
	check("mcchecker_sim_collectives_total", 2, "op", "Win_create")
	check("mcchecker_sim_collectives_total", 4, "op", "Win_fence")
	// Both Puts are deferred, then applied at the closing fence.
	check("mcchecker_sim_rma_ops_total", 2, "state", "deferred")
	check("mcchecker_sim_rma_ops_total", 2, "state", "applied")
	// First fence opens an epoch per rank; second closes and reopens;
	// Win_free does not count as a fence epoch event.
	check("mcchecker_sim_epochs_total", 4, "mode", "fence", "event", "opened")
	check("mcchecker_sim_epochs_total", 2, "mode", "fence", "event", "closed")
	check("mcchecker_sim_epochs_total", 2, "mode", "lock", "event", "opened")
	check("mcchecker_sim_epochs_total", 2, "mode", "lock", "event", "closed")
}

// TestRunNilObs checks the disabled configuration stays inert.
func TestRunNilObs(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		p.Barrier(p.CommWorld())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
