package mpi

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/memory"
	"repro/internal/trace"
)

// recordingHook collects all events and allocations, assigning per-rank
// sequence numbers the way the profiler does.
type recordingHook struct {
	mu     sync.Mutex
	seq    map[int32]int64
	evs    []trace.Event
	allocs []string
}

func newRecordingHook() *recordingHook {
	return &recordingHook{seq: make(map[int32]int64)}
}

func (h *recordingHook) MPICall(p *Proc, ev trace.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ev.Seq = h.seq[ev.Rank]
	h.seq[ev.Rank]++
	h.evs = append(h.evs, ev)
}

func (h *recordingHook) BufferAllocated(p *Proc, b *memory.Buffer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.allocs = append(h.allocs, b.Name())
}

func (h *recordingHook) eventsOf(rank int32, kind trace.Kind) []trace.Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []trace.Event
	for _, ev := range h.evs {
		if ev.Rank == rank && (kind == trace.KindInvalid || ev.Kind == kind) {
			out = append(out, ev)
		}
	}
	return out
}

func TestRunBasics(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	err := Run(4, Options{}, func(p *Proc) error {
		mu.Lock()
		seen[p.Rank()] = true
		mu.Unlock()
		if p.Size() != 4 {
			t.Errorf("Size = %d", p.Size())
		}
		if p.CommWorld().Size() != 4 || p.CommWorld().ID() != 0 {
			t.Error("world comm wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("ranks seen: %v", seen)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, Options{}, func(*Proc) error { return nil }); err == nil {
		t.Error("size 0 must error")
	}
}

func TestRunCollectsErrors(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(3, Options{}, func(p *Proc) error {
		if p.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		if p.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v", err)
	}
}

func TestRunUsageErrorSurfaces(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(p.CommWorld(), p.Alloc(4, "b"), 0, 1, Int32, 99, 0) // bad dest
		}
		return nil
	})
	var ue *UsageError
	if !errors.As(err, &ue) || ue.Rank != 0 || ue.Call != "Send" {
		t.Errorf("err = %v", err)
	}
}

func TestRunTimeoutOnDeadlock(t *testing.T) {
	start := time.Now()
	err := Run(2, Options{Timeout: 200 * time.Millisecond}, func(p *Proc) error {
		if p.Rank() == 0 {
			// Recv that never matches: deadlock.
			p.Recv(p.CommWorld(), p.Alloc(4, "b"), 0, 1, Int32, 1, 7)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout did not fire promptly")
	}
	// The watchdog names the blocked call and the stuck rank.
	if !strings.Contains(err.Error(), "rank 0: blocked in Recv") {
		t.Errorf("stuck diagnostics missing: %v", err)
	}
}

func TestAllocNotifiesHook(t *testing.T) {
	h := newRecordingHook()
	err := Run(1, Options{Hook: h}, func(p *Proc) error {
		p.Alloc(16, "window")
		p.AllocFloat64(4, "grid")
		p.AllocInt32(2, "flags")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"window", "grid", "flags"}
	if len(h.allocs) != 3 {
		t.Fatalf("allocs = %v", h.allocs)
	}
	for i, name := range want {
		if h.allocs[i] != name {
			t.Errorf("alloc %d = %q, want %q", i, h.allocs[i], name)
		}
	}
}

func TestEmitCapturesCallerLocation(t *testing.T) {
	h := newRecordingHook()
	err := Run(2, Options{Hook: h}, func(p *Proc) error {
		p.Barrier(p.CommWorld())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := h.eventsOf(0, trace.KindBarrier)
	if len(evs) != 1 {
		t.Fatalf("barrier events: %d", len(evs))
	}
	if !strings.HasSuffix(evs[0].File, "world_test.go") || evs[0].Line == 0 {
		t.Errorf("location = %s:%d", evs[0].File, evs[0].Line)
	}
}

func TestWithCallDepth(t *testing.T) {
	h := newRecordingHook()
	wrapper := func(p *Proc) {
		p.WithCallDepth(1).Barrier(p.CommWorld())
	}
	err := Run(2, Options{Hook: h}, func(p *Proc) error {
		wrapper(p) // the logged location should be THIS line
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := h.eventsOf(1, trace.KindBarrier)
	if len(evs) != 1 || !strings.HasSuffix(evs[0].File, "world_test.go") {
		t.Fatalf("events: %v", evs)
	}
}
