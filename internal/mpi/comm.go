package mpi

import (
	"sort"
	"sync"

	"repro/internal/trace"
)

// Comm is a communicator: a process group with an isolated communication
// context. Comm values are shared, immutable descriptors; per-rank state
// (pending messages) lives in the ranks' mailboxes, keyed by communicator
// id.
type Comm struct {
	world *World
	id    int32
	group *Group
	coll  *collState
}

func newComm(w *World, id int32, g *Group) *Comm {
	return &Comm{world: w, id: id, group: g, coll: newCollState(w, g)}
}

// ID returns the communicator id (0 is MPI_COMM_WORLD).
func (c *Comm) ID() int32 { return c.id }

// Size returns the number of member processes.
func (c *Comm) Size() int { return c.group.Size() }

// Group returns the communicator's process group.
func (c *Comm) Group() *Group { return c.group }

// RankOf returns the communicator-relative rank of p, or -1 if p is not a
// member.
func (c *Comm) RankOf(p *Proc) int { return c.group.Rank(p.rank) }

// WorldRank translates a communicator-relative rank to a world rank.
func (c *Comm) WorldRank(rel int) int { return c.group.WorldRank(rel) }

// mustMember returns p's relative rank, panicking with a usage error if p
// is not in the communicator.
func (c *Comm) mustMember(p *Proc, call string) int {
	rel := c.RankOf(p)
	if rel < 0 {
		p.errorf(call, "rank %d is not a member of communicator %d", p.rank, c.id)
	}
	return rel
}

// collState is the rendezvous shared by all collective operations on one
// communicator (or one window, for fences). Collectives on a communicator
// are totally ordered, per the MPI requirement that all members invoke them
// in the same order.
type collState struct {
	world   *World
	group   *Group // member world ranks, for failure-dependency checks
	mu      sync.Mutex
	cond    *sync.Cond
	gen     uint64
	arrived int
	op      string
	slots   map[int]any
	result  any
}

func newCollState(w *World, g *Group) *collState {
	cs := &collState{world: w, group: g, slots: make(map[int]any)}
	cs.cond = sync.NewCond(&cs.mu)
	w.addCond(cs.cond)
	return cs
}

// rendezvous blocks until all size participants have deposited, then
// returns compute's result (evaluated once, by the last arriver) to every
// participant. op names the collective for mismatch detection.
func (cs *collState) rendezvous(p *Proc, size, rel int, op string, deposit any, compute func(slots map[int]any) any) any {
	defer p.enterBlocked(op)()
	cs.mu.Lock()
	if cs.arrived == 0 {
		cs.op = op
		// Fresh map every round: compute may return the slots map itself
		// as the collective's result, which waiters read after the next
		// round has already begun.
		cs.slots = make(map[int]any, size)
	} else if cs.op != op {
		mismatch := cs.op
		cs.mu.Unlock()
		p.errorf(op, "collective mismatch: other ranks are in %s", mismatch)
	}
	cs.slots[rel] = deposit
	cs.arrived++
	if cs.arrived == size {
		cs.result = compute(cs.slots)
		cs.arrived = 0
		cs.gen++
		cs.cond.Broadcast()
		r := cs.result
		cs.mu.Unlock()
		return r
	}
	myGen := cs.gen
	for cs.gen == myGen {
		if cs.world.abortedNow() {
			cs.mu.Unlock()
			panic(abortPanic{})
		}
		// Fault-tolerant mode: a collective over a dead member can never
		// complete — deliver the failure instead of blocking forever.
		if cs.world.anyFailed() {
			if fr := cs.world.failedOf(cs.group.Ranks()); fr >= 0 {
				cs.mu.Unlock()
				p.failPeer(op, fr)
			}
		}
		cs.cond.Wait()
	}
	r := cs.result
	cs.mu.Unlock()
	return r
}

// CommCreate creates a communicator from a subgroup of parent
// (MPI_Comm_create). It is collective over parent; members of g receive
// the new communicator and non-members receive nil.
func (p *Proc) CommCreate(parent *Comm, g *Group) *Comm {
	rel := parent.mustMember(p, "Comm_create")
	result := parent.coll.rendezvous(p, parent.Size(), rel, "Comm_create", nil,
		func(map[int]any) any {
			return newComm(p.world, p.world.allocCommID(), g)
		})
	nc := result.(*Comm)
	if !g.Contains(p.rank) {
		return nil
	}
	p.emit(trace.Event{
		Kind:    trace.KindCommCreate,
		Comm:    nc.id,
		Members: toInt32s(g.Ranks()),
	}, 1)
	return nc
}

// CommDup duplicates a communicator with a fresh context (MPI_Comm_dup).
func (p *Proc) CommDup(c *Comm) *Comm {
	rel := c.mustMember(p, "Comm_dup")
	result := c.coll.rendezvous(p, c.Size(), rel, "Comm_dup", nil,
		func(map[int]any) any {
			return newComm(p.world, p.world.allocCommID(), c.group)
		})
	nc := result.(*Comm)
	p.emit(trace.Event{
		Kind:    trace.KindCommCreate,
		Comm:    nc.id,
		Members: toInt32s(c.group.Ranks()),
	}, 1)
	return nc
}

// CommSplit partitions a communicator by color; within a color, new ranks
// are ordered by (key, old rank) (MPI_Comm_split). A negative color
// (MPI_UNDEFINED) yields nil.
func (p *Proc) CommSplit(c *Comm, color, key int) *Comm {
	rel := c.mustMember(p, "Comm_split")
	type ck struct{ color, key int }
	result := c.coll.rendezvous(p, c.Size(), rel, "Comm_split", ck{color, key},
		func(slots map[int]any) any {
			byColor := map[int][]struct{ key, rel int }{}
			for r, v := range slots {
				d := v.(ck)
				if d.color < 0 {
					continue
				}
				byColor[d.color] = append(byColor[d.color], struct{ key, rel int }{d.key, r})
			}
			comms := map[int]*Comm{}
			colors := make([]int, 0, len(byColor))
			for col := range byColor {
				colors = append(colors, col)
			}
			sort.Ints(colors)
			for _, col := range colors {
				members := byColor[col]
				sort.Slice(members, func(i, j int) bool {
					if members[i].key != members[j].key {
						return members[i].key < members[j].key
					}
					return members[i].rel < members[j].rel
				})
				world := make([]int, len(members))
				for i, m := range members {
					world[i] = c.WorldRank(m.rel)
				}
				comms[col] = newComm(p.world, p.world.allocCommID(), NewGroup(world))
			}
			return comms
		})
	if color < 0 {
		return nil
	}
	nc := result.(map[int]*Comm)[color]
	p.emit(trace.Event{
		Kind:    trace.KindCommCreate,
		Comm:    nc.id,
		Members: toInt32s(nc.group.Ranks()),
	}, 1)
	return nc
}

func toInt32s(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}
