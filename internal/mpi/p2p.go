package mpi

import (
	"sync"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Wildcards for Recv/Irecv source and tag.
const (
	AnySource = -1
	AnyTag    = -1
)

// Status describes a completed receive.
type Status struct {
	Source int // communicator-relative source rank
	Tag    int
	Bytes  int
}

// message is one in-flight point-to-point message.
type message struct {
	commID int32
	src    int32 // communicator-relative source rank
	tag    int32
	data   []byte
}

// mailbox holds messages delivered to a rank but not yet received.
// Matching is FIFO per (comm, source, tag): MPI's non-overtaking rule.
type mailbox struct {
	world *World
	mu    sync.Mutex
	cond  *sync.Cond
	msgs  []*message
}

func newMailbox(w *World) *mailbox {
	mb := &mailbox{world: w}
	mb.cond = sync.NewCond(&mb.mu)
	w.addCond(mb.cond)
	return mb
}

func (mb *mailbox) deliver(m *message) {
	mb.mu.Lock()
	mb.msgs = append(mb.msgs, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// receive blocks until a message matching (c, src, tag) arrives and
// removes it. src/tag may be wildcards. Deliverable messages are always
// scanned before the failure check: everything a rank sent before dying
// was delivered eagerly before its failure flag was published, so a
// receive of an already-sent message completes normally even when the
// sender later crashed.
func (mb *mailbox) receive(p *Proc, c *Comm, src, tag int, call string) *message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if m.commID != c.id {
				continue
			}
			if src != AnySource && m.src != int32(src) {
				continue
			}
			if tag != AnyTag && m.tag != int32(tag) {
				continue
			}
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			return m
		}
		if mb.world.abortedNow() {
			panic(abortPanic{}) // deferred unlock releases the mutex
		}
		// Fault-tolerant mode: a receive from a dead rank can never match.
		// A wildcard receive fails as soon as any communicator member has
		// died (ULFM's MPI_ERR_PROC_FAILED_PENDING) — the failed source
		// might have been the matching sender.
		if mb.world.anyFailed() {
			if src != AnySource {
				if sw := c.WorldRank(src); mb.world.rankIsFailed(sw) {
					p.failPeer(call, sw) // deferred unlock releases the mutex
				}
			} else if fr := mb.world.failedOf(c.group.Ranks()); fr >= 0 {
				p.failPeer(call, fr)
			}
		}
		mb.cond.Wait()
	}
}

// Send performs a blocking standard-mode send of count elements of dtype
// from buf at byte offset off to dest (communicator-relative) with tag.
// The simulator buffers eagerly, so Send completes locally, like small
// standard-mode sends in practice.
func (p *Proc) Send(c *Comm, buf *memory.Buffer, off uint64, count int, dtype *Datatype, dest, tag int) {
	c.mustMember(p, "Send")
	if dest < 0 || dest >= c.Size() {
		p.errorf("Send", "destination rank %d out of range for communicator of size %d", dest, c.Size())
	}
	p.emit(trace.Event{
		Kind: trace.KindSend, Comm: c.id, Peer: int32(dest), Tag: int32(tag),
		OriginAddr: buf.Addr(off), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	p.sendInternal(c, buf, off, count, dtype, dest, tag)
}

func (p *Proc) sendInternal(c *Comm, buf *memory.Buffer, off uint64, count int, dtype *Datatype, dest, tag int) {
	m := &message{
		commID: c.id,
		src:    int32(c.RankOf(p)),
		tag:    int32(tag),
		data:   pack(buf, off, dtype, count),
	}
	p.world.proc(c.WorldRank(dest)).mail.deliver(m)
}

// Recv performs a blocking receive into buf at byte offset off. src may be
// AnySource and tag AnyTag. The logged event carries the resolved source.
func (p *Proc) Recv(c *Comm, buf *memory.Buffer, off uint64, count int, dtype *Datatype, src, tag int) Status {
	c.mustMember(p, "Recv")
	if src != AnySource && (src < 0 || src >= c.Size()) {
		p.errorf("Recv", "source rank %d out of range for communicator of size %d", src, c.Size())
	}
	st := p.recvInternal(c, buf, off, count, dtype, src, tag, "Recv")
	p.emit(trace.Event{
		Kind: trace.KindRecv, Comm: c.id, Peer: int32(st.Source), Tag: int32(st.Tag),
		OriginAddr: buf.Addr(off), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	return st
}

func (p *Proc) recvInternal(c *Comm, buf *memory.Buffer, off uint64, count int, dtype *Datatype, src, tag int, call string) Status {
	release := p.enterBlocked(call)
	m := p.mail.receive(p, c, src, tag, call)
	release()
	capacity := dtype.dm.TileBytes(count)
	if uint64(len(m.data)) > capacity {
		p.errorf(call, "message of %d bytes truncated by receive buffer of %d bytes", len(m.data), capacity)
	}
	n := int(uint64(len(m.data)) / dtype.Size())
	unpack(buf, off, dtype, n, m.data)
	return Status{Source: int(m.src), Tag: int(m.tag), Bytes: len(m.data)}
}

// Request represents a pending nonblocking operation.
type Request struct {
	p    *Proc
	id   int32
	kind trace.Kind
	done bool

	// irecv parameters, consumed at Wait.
	comm  *Comm
	buf   *memory.Buffer
	off   uint64
	count int
	dtype *Datatype
	src   int
	tag   int

	status Status
}

// Isend starts a nonblocking send. The simulator's eager buffering makes
// the data transfer immediate, so the returned request is already complete;
// Wait on it only logs the completion event.
func (p *Proc) Isend(c *Comm, buf *memory.Buffer, off uint64, count int, dtype *Datatype, dest, tag int) *Request {
	c.mustMember(p, "Isend")
	if dest < 0 || dest >= c.Size() {
		p.errorf("Isend", "destination rank %d out of range for communicator of size %d", dest, c.Size())
	}
	req := &Request{p: p, id: p.allocReqID(), kind: trace.KindIsend, done: true}
	p.emit(trace.Event{
		Kind: trace.KindIsend, Comm: c.id, Peer: int32(dest), Tag: int32(tag), Req: req.id,
		OriginAddr: buf.Addr(off), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	p.sendInternal(c, buf, off, count, dtype, dest, tag)
	return req
}

// Irecv starts a nonblocking receive. The matching and data delivery happen
// at Wait (the simulator does not model asynchronous progress, which is a
// legal MPI implementation choice).
func (p *Proc) Irecv(c *Comm, buf *memory.Buffer, off uint64, count int, dtype *Datatype, src, tag int) *Request {
	c.mustMember(p, "Irecv")
	if src != AnySource && (src < 0 || src >= c.Size()) {
		p.errorf("Irecv", "source rank %d out of range for communicator of size %d", src, c.Size())
	}
	req := &Request{
		p: p, id: p.allocReqID(), kind: trace.KindIrecv,
		comm: c, buf: buf, off: off, count: count, dtype: dtype, src: src, tag: tag,
	}
	p.emit(trace.Event{
		Kind: trace.KindIrecv, Comm: c.id, Peer: int32(src), Tag: int32(tag), Req: req.id,
		OriginAddr: buf.Addr(off), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	return req
}

// Wait blocks until the request completes and logs the completion event.
// For receives, the event's Peer carries the resolved source.
func (p *Proc) Wait(req *Request) Status {
	// Compare by identity of the rank, not the handle pointer: WithCallDepth
	// returns shallow copies bound to the same rank.
	if req.p.world != p.world || req.p.rank != p.rank {
		p.errorf("Wait", "request belongs to rank %d", req.p.rank)
	}
	ev := trace.Event{Kind: trace.KindWaitReq, Req: req.id}
	if req.kind == trace.KindIrecv {
		if !req.done {
			req.status = p.recvInternal(req.comm, req.buf, req.off, req.count, req.dtype, req.src, req.tag, "Wait")
			req.done = true
		}
		ev.Comm = req.comm.id
		ev.Peer = int32(req.status.Source)
		ev.Tag = int32(req.status.Tag)
	}
	req.done = true
	p.emit(ev, 1)
	return req.status
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv), avoiding
// the deadlock of two blocking calls by sending eagerly first.
func (p *Proc) Sendrecv(c *Comm,
	sendBuf *memory.Buffer, sendOff uint64, sendCount int, sendType *Datatype, dest, sendTag int,
	recvBuf *memory.Buffer, recvOff uint64, recvCount int, recvType *Datatype, src, recvTag int) Status {
	q := p.WithCallDepth(1) // log the application call site, not this wrapper
	q.Send(c, sendBuf, sendOff, sendCount, sendType, dest, sendTag)
	return q.Recv(c, recvBuf, recvOff, recvCount, recvType, src, recvTag)
}
