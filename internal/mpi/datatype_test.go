package mpi

import (
	"reflect"
	"testing"

	"repro/internal/memory"
	"repro/internal/trace"
)

func TestPredefinedDatatypes(t *testing.T) {
	cases := []struct {
		d    *Datatype
		id   int32
		size uint64
	}{
		{Byte, trace.TypeByte, 1},
		{Int32, trace.TypeInt32, 4},
		{Int64, trace.TypeInt64, 8},
		{Float32, trace.TypeFloat32, 4},
		{Float64, trace.TypeFloat64, 8},
	}
	for _, c := range cases {
		if c.d.ID() != c.id || c.d.Size() != c.size || c.d.Extent() != c.size {
			t.Errorf("type %d: id=%d size=%d extent=%d", c.id, c.d.ID(), c.d.Size(), c.d.Extent())
		}
	}
}

func TestTypeConstructors(t *testing.T) {
	h := newRecordingHook()
	err := Run(1, Options{Hook: h}, func(p *Proc) error {
		contig := p.TypeContiguous(3, Int32)
		if contig.Size() != 12 || contig.Extent() != 12 {
			t.Errorf("contig: size=%d extent=%d", contig.Size(), contig.Extent())
		}
		if contig.ID() < trace.TypeUserBase {
			t.Errorf("user type id %d below base", contig.ID())
		}

		vec := p.TypeVector(3, 2, 4, Float64) // 3 blocks of 2, stride 4
		if vec.Size() != 48 {
			t.Errorf("vector size = %d", vec.Size())
		}
		if vec.Extent() != (2*4+2)*8 {
			t.Errorf("vector extent = %d", vec.Extent())
		}
		gotSegs := vec.Map().Segments
		// Stride 4 is in base extents: 4×8 = 32 bytes between block starts.
		want := []memory.Segment{{Disp: 0, Len: 16}, {Disp: 32, Len: 16}, {Disp: 64, Len: 16}}
		if !reflect.DeepEqual(gotSegs, want) {
			t.Errorf("vector segments = %v, want %v", gotSegs, want)
		}

		idx := p.TypeIndexed([]int{2, 1}, []int{0, 5}, Int32)
		wantIdx := []memory.Segment{{Disp: 0, Len: 8}, {Disp: 20, Len: 4}}
		if !reflect.DeepEqual(idx.Map().Segments, wantIdx) {
			t.Errorf("indexed segments = %v, want %v", idx.Map().Segments, wantIdx)
		}

		st := p.TypeStruct([]int{1, 1}, []uint64{0, 12}, []*Datatype{Int32, Int64})
		wantSt := []memory.Segment{{Disp: 0, Len: 4}, {Disp: 12, Len: 8}}
		if !reflect.DeepEqual(st.Map().Segments, wantSt) {
			t.Errorf("struct segments = %v, want %v", st.Map().Segments, wantSt)
		}
		if st.elem != 0 {
			t.Error("heterogeneous struct must have no arithmetic base")
		}

		homog := p.TypeStruct([]int{2, 1}, []uint64{0, 16}, []*Datatype{Float64, Float64})
		if homog.elem != trace.TypeFloat64 {
			t.Error("homogeneous struct must keep base type")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every constructor must log a Type_create event with the data-map.
	evs := h.eventsOf(0, trace.KindTypeCreate)
	if len(evs) != 5 {
		t.Fatalf("type create events: %d", len(evs))
	}
	if evs[0].TypeMap.Size() != 12 {
		t.Errorf("logged contig map = %v", evs[0].TypeMap)
	}
}

func TestTypeSubarray2D(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		// 4x4 int32 matrix; select the 2x2 block at (1,1).
		sub := p.TypeSubarray2D(4, 4, 2, 2, 1, 1, Int32)
		if sub.Size() != 16 {
			t.Errorf("subarray size = %d", sub.Size())
		}
		want := []memory.Segment{{Disp: (1*4 + 1) * 4, Len: 8}, {Disp: (2*4 + 1) * 4, Len: 8}}
		if !reflect.DeepEqual(sub.Map().Segments, want) {
			t.Errorf("subarray segments = %v, want %v", sub.Map().Segments, want)
		}
		if sub.Extent() != 64 {
			t.Errorf("subarray extent = %d (full array)", sub.Extent())
		}

		// Transfer the block between ranks through a window.
		win := p.Alloc(64, "mat")
		w := p.WinCreate(win, 1, p.CommWorld())
		if p.Rank() == 0 {
			for i := uint64(0); i < 16; i++ {
				win.SetInt32(i*4, int32(i))
			}
		}
		w.Fence(AssertNone)
		if p.Rank() == 0 {
			w.Put(win, 0, 1, sub, 1, 0, 1, sub)
		}
		w.Fence(AssertNone)
		if p.Rank() == 1 {
			// Only the 2x2 block lands; everything else stays zero.
			for _, c := range []struct {
				idx  uint64
				want int32
			}{{5, 5}, {6, 6}, {9, 9}, {10, 10}, {0, 0}, {4, 0}, {15, 0}} {
				if got := win.Int32At(c.idx * 4); got != c.want {
					t.Errorf("cell %d = %d, want %d", c.idx, got, c.want)
				}
			}
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypeSubarrayValidation(t *testing.T) {
	err := Run(1, Options{}, func(p *Proc) error {
		p.TypeSubarray2D(4, 4, 3, 3, 2, 2, Int32) // overflows
		return nil
	})
	if err == nil {
		t.Error("out-of-bounds subarray must be rejected")
	}
}

func TestTypeConstructorValidation(t *testing.T) {
	for name, body := range map[string]func(p *Proc){
		"contig-zero":     func(p *Proc) { p.TypeContiguous(0, Int32) },
		"vector-bad":      func(p *Proc) { p.TypeVector(2, 3, 1, Int32) },
		"indexed-empty":   func(p *Proc) { p.TypeIndexed(nil, nil, Int32) },
		"indexed-negdisp": func(p *Proc) { p.TypeIndexed([]int{1}, []int{-1}, Int32) },
		"struct-mismatch": func(p *Proc) { p.TypeStruct([]int{1}, []uint64{0, 8}, []*Datatype{Int32}) },
	} {
		err := Run(1, Options{}, func(p *Proc) error { body(p); return nil })
		if err == nil {
			t.Errorf("%s: expected usage error", name)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	err := Run(1, Options{}, func(p *Proc) error {
		vec := p.TypeVector(2, 1, 3, Int32) // elements at offsets 0 and 12 bytes
		src := p.Alloc(64, "src")
		dst := p.Alloc(64, "dst")
		src.SetInt32(0, 5)
		src.SetInt32(12, 7)
		packed := pack(src, 0, vec, 1)
		if len(packed) != 8 {
			t.Fatalf("packed %d bytes", len(packed))
		}
		unpack(dst, 0, vec, 1, packed)
		if dst.Int32At(0) != 5 || dst.Int32At(12) != 7 {
			t.Errorf("unpack: %d %d", dst.Int32At(0), dst.Int32At(12))
		}
		// Unpack the same data contiguously.
		unpack(dst, 32, Int32, 2, packed)
		if dst.Int32At(32) != 5 || dst.Int32At(36) != 7 {
			t.Errorf("contig unpack: %d %d", dst.Int32At(32), dst.Int32At(36))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCombineOps(t *testing.T) {
	f64 := func(vals ...float64) []byte {
		b := make([]byte, 0, len(vals)*8)
		tmp := memory.NewAddressSpace().Alloc(uint64(len(vals))*8, "t")
		tmp.SetFloat64Slice(0, vals)
		return append(b, tmp.Bytes()...)
	}
	dst := f64(1, 2, 3)
	combine(dst, f64(10, 20, 30), trace.TypeFloat64, trace.OpSum)
	got := memory.NewAddressSpace().Alloc(24, "g")
	copy(got.Bytes(), dst)
	if got.Float64At(0) != 11 || got.Float64At(8) != 22 || got.Float64At(16) != 33 {
		t.Errorf("sum: %v %v %v", got.Float64At(0), got.Float64At(8), got.Float64At(16))
	}

	dst = f64(5)
	combine(dst, f64(3), trace.TypeFloat64, trace.OpMax)
	copy(got.Bytes(), dst)
	if got.Float64At(0) != 5 {
		t.Error("max wrong")
	}

	dst = f64(5)
	combine(dst, f64(3), trace.TypeFloat64, trace.OpReplace)
	copy(got.Bytes(), dst)
	if got.Float64At(0) != 3 {
		t.Error("replace wrong")
	}

	// Byte sum.
	b := []byte{1, 2}
	combine(b, []byte{10, 20}, trace.TypeByte, trace.OpSum)
	if b[0] != 11 || b[1] != 22 {
		t.Errorf("byte sum: %v", b)
	}
}
