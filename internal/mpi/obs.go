package mpi

import (
	"repro/internal/obs"
	"repro/internal/trace"
)

// simMetrics holds the simulator's observability handles: message and
// collective counts, one-sided operations deferred into epochs and applied
// at epoch close, and epochs opened/closed per synchronization mode. A nil
// *simMetrics (no registry configured) makes every method a no-op, so the
// call sites are unconditional.
//
// Counters on per-call paths are sharded by rank (obs.RankCounter) so that
// rank goroutines do not contend on the instrumentation — the simulator is
// the substrate of the paper's overhead experiments (§VII-B), and the
// metrics must not perturb the numbers they expose.
type simMetrics struct {
	msgsSent    *obs.RankCounter
	msgsRecv    *obs.RankCounter
	collectives [trace.KindCount]*obs.RankCounter
	rmaDeferred *obs.RankCounter
	rmaApplied  *obs.Counter
	epochOpened map[string]*obs.Counter
	epochClosed map[string]*obs.Counter

	faultsInjected map[string]*obs.Counter // by fault kind
	rankFailures   *obs.Counter
}

// Epoch synchronization modes, the label values of
// mcchecker_sim_epochs_total.
const (
	epochFence        = "fence"
	epochLock         = "lock"
	epochLockAll      = "lockall"
	epochPSCWAccess   = "pscw_access"
	epochPSCWExposure = "pscw_exposure"
)

// Fault kinds, the label values of mcchecker_faults_injected_total.
const (
	faultCrash   = "crash"
	faultYield   = "yield"
	faultReorder = "reorder"
	faultPrio    = "prio"
	faultDelay   = "delay"
)

func newSimMetrics(reg *obs.Registry) *simMetrics {
	if reg == nil {
		return nil
	}
	m := &simMetrics{
		msgsSent:    reg.RankCounter("mcchecker_sim_messages_total", "dir", "sent"),
		msgsRecv:    reg.RankCounter("mcchecker_sim_messages_total", "dir", "received"),
		rmaDeferred: reg.RankCounter("mcchecker_sim_rma_ops_total", "state", "deferred"),
		rmaApplied:  reg.Counter("mcchecker_sim_rma_ops_total", "state", "applied"),
		epochOpened: map[string]*obs.Counter{},
		epochClosed: map[string]*obs.Counter{},
	}
	for k := 0; k < trace.KindCount; k++ {
		if kind := trace.Kind(k); kind.IsCollective() {
			m.collectives[k] = reg.RankCounter("mcchecker_sim_collectives_total", "op", kind.String())
		}
	}
	for _, mode := range []string{epochFence, epochLock, epochLockAll, epochPSCWAccess, epochPSCWExposure} {
		m.epochOpened[mode] = reg.Counter("mcchecker_sim_epochs_total", "mode", mode, "event", "opened")
		m.epochClosed[mode] = reg.Counter("mcchecker_sim_epochs_total", "mode", mode, "event", "closed")
	}
	m.faultsInjected = map[string]*obs.Counter{}
	for _, kind := range []string{faultCrash, faultYield, faultReorder, faultPrio, faultDelay} {
		m.faultsInjected[kind] = reg.Counter("mcchecker_faults_injected_total", "kind", kind)
	}
	m.rankFailures = reg.Counter("mcchecker_sim_rank_failures_total")
	return m
}

// faultInjected counts one injected fault of the given kind.
func (m *simMetrics) faultInjected(kind string) {
	if m == nil {
		return
	}
	m.faultsInjected[kind].Inc()
}

// rankFailed counts one rank death (injected crash or cascaded failure).
func (m *simMetrics) rankFailed() {
	if m == nil {
		return
	}
	m.rankFailures.Inc()
}

// record tallies one MPI call on its classifying counter (messages and
// collectives; epochs and RMA queues are counted at their state
// transitions, not per call).
func (m *simMetrics) record(kind trace.Kind, rank int32) {
	if m == nil {
		return
	}
	switch kind {
	case trace.KindSend, trace.KindIsend:
		m.msgsSent.Inc(rank)
	case trace.KindRecv, trace.KindIrecv:
		m.msgsRecv.Inc(rank)
	default:
		if kind.IsCollective() {
			m.collectives[kind].Inc(rank)
		}
	}
}

// rmaQueued counts a one-sided operation deferred into an open epoch.
func (m *simMetrics) rmaQueued(rank int32) {
	if m == nil {
		return
	}
	m.rmaDeferred.Inc(rank)
}

// rmaFlushed counts operations applied at an epoch close or flush.
func (m *simMetrics) rmaFlushed(n int) {
	if m == nil || n == 0 {
		return
	}
	m.rmaApplied.Add(int64(n))
}

// epochOpen / epochClose count epoch transitions per synchronization mode.
func (m *simMetrics) epochOpen(mode string) {
	if m == nil {
		return
	}
	m.epochOpened[mode].Inc()
}

func (m *simMetrics) epochClose(mode string) {
	if m == nil {
		return
	}
	m.epochClosed[mode].Inc()
}
