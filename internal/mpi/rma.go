package mpi

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Win is a per-rank handle on an RMA window. The window itself (winShared)
// is a collective object; the handle additionally tracks the rank's open
// epochs and its pending (issued but not completed) one-sided operations —
// the deferred-completion queue that gives the simulator MPI's nonblocking
// RMA semantics.
type Win struct {
	p *Proc
	s *winShared

	fenceCount   int      // number of Win_fence calls so far
	pendingFence []*rmaOp // ops completing at the next fence
	lockHeld     map[int]trace.LockType
	pendingLock  map[int][]*rmaOp // ops completing at Win_unlock(target)
	startGroup   *Group           // open access epoch (Win_start)
	pendingStart []*rmaOp         // ops completing at Win_complete
	issueSeq     int              // per-handle issue counter for deterministic ordering

	// MPI-3 lock_all epoch state.
	lockAll    bool
	pendingAll map[int][]*rmaOp // ops completing at Win_unlock_all or Flush
}

type winShared struct {
	id     int32
	comm   *Comm
	locals []winLocal // indexed by comm-relative rank
	locks  []*lockState
	fences *collState // fence/free rendezvous, separate from comm collectives

	// batchSeq numbers the window's non-empty completion batches, the
	// ordinal the schedule clauses (chg=K, delay=R@K) address. For
	// fence-closed epochs the numbering is fully deterministic (fences are
	// collective and ordered); for concurrent passive-target closes it is
	// deterministic only up to lock-acquisition order.
	batchSeq atomic.Int32

	pscwMu   sync.Mutex
	pscwCond *sync.Cond
	posts    map[int]*postRecord // active exposure epoch per target rank
}

type winLocal struct {
	buf      *memory.Buffer
	dispUnit uint32
}

type postRecord struct {
	origins   *Group
	remaining int          // origins that have not yet called Win_complete
	done      map[int]bool // origin world ranks that have completed
}

// lockState implements the passive-target lock of one target rank.
// Holder world ranks are tracked so that a waiter can detect a holder
// that died without releasing (fault-tolerant mode).
type lockState struct {
	world   *World
	mu      sync.Mutex
	cond    *sync.Cond
	holders int
	excl    bool
	byRank  map[int]int // holding world rank → held count
}

func newLockState(w *World) *lockState {
	ls := &lockState{world: w, byRank: make(map[int]int)}
	ls.cond = sync.NewCond(&ls.mu)
	w.addCond(ls.cond)
	return ls
}

func (ls *lockState) acquire(p *Proc, call string, lt trace.LockType) {
	ls.mu.Lock()
	if lt == trace.LockExclusive {
		for ls.holders > 0 {
			ls.waitCheck(p, call)
			ls.cond.Wait()
		}
		ls.excl = true
	} else {
		for ls.excl {
			ls.waitCheck(p, call)
			ls.cond.Wait()
		}
	}
	ls.holders++
	ls.byRank[p.rank]++
	ls.mu.Unlock()
}

// waitCheck unwinds a blocked acquirer when the job aborted or a current
// holder died without releasing. Called with ls.mu held; unlocks it
// before panicking.
func (ls *lockState) waitCheck(p *Proc, call string) {
	if ls.world.abortedNow() {
		ls.mu.Unlock()
		panic(abortPanic{})
	}
	if ls.world.anyFailed() {
		ranks := make([]int, 0, len(ls.byRank))
		for r := range ls.byRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		if fr := ls.world.failedOf(ranks); fr >= 0 {
			ls.mu.Unlock()
			p.failPeer(call, fr)
		}
	}
}

func (ls *lockState) release(rank int) {
	ls.mu.Lock()
	ls.holders--
	if ls.holders == 0 {
		ls.excl = false
	}
	if ls.byRank[rank]--; ls.byRank[rank] <= 0 {
		delete(ls.byRank, rank)
	}
	ls.cond.Broadcast()
	ls.mu.Unlock()
}

// rmaOp is one queued one-sided operation.
type rmaOp struct {
	kind   trace.Kind // KindPut, KindGet, KindAccumulate
	origin int        // world rank of origin (for deterministic ordering)
	seq    int        // issue order within the origin handle

	originBuf   *memory.Buffer
	originOff   uint64
	originType  *Datatype
	originCount int

	target      int // comm-relative target rank
	targetDisp  uint64
	targetType  *Datatype
	targetCount int

	op trace.AccOp // accumulate family only

	// Fetching atomics (MPI-3): where to deliver the target's old value.
	resultBuf   *memory.Buffer
	resultOff   uint64
	resultType  *Datatype
	resultCount int
	compare     []byte // Compare_and_swap comparison value, read at issue
}

// WinCreate exposes buf for one-sided access by all members of c
// (MPI_Win_create). It is collective over c; every member contributes its
// local window buffer and displacement unit.
func (p *Proc) WinCreate(buf *memory.Buffer, dispUnit uint32, c *Comm) *Win {
	rel := c.mustMember(p, "Win_create")
	if dispUnit == 0 {
		p.errorf("Win_create", "displacement unit must be positive")
	}
	type deposit struct {
		buf  *memory.Buffer
		unit uint32
	}
	result := c.coll.rendezvous(p, c.Size(), rel, "Win_create", deposit{buf, dispUnit},
		func(slots map[int]any) any {
			s := &winShared{
				id:     p.world.allocWinID(),
				comm:   c,
				locals: make([]winLocal, c.Size()),
				locks:  make([]*lockState, c.Size()),
				fences: newCollState(p.world, c.group),
				posts:  make(map[int]*postRecord),
			}
			s.pscwCond = sync.NewCond(&s.pscwMu)
			p.world.addCond(s.pscwCond)
			for r := 0; r < c.Size(); r++ {
				d := slots[r].(deposit)
				s.locals[r] = winLocal{buf: d.buf, dispUnit: d.unit}
				s.locks[r] = newLockState(p.world)
			}
			return s
		})
	s := result.(*winShared)
	p.emit(trace.Event{
		Kind: trace.KindWinCreate, Win: s.id, Comm: c.id,
		WinBase: buf.Base(), WinSize: buf.Size(), DispUnit: dispUnit,
	}, 1)
	return &Win{
		p: p, s: s,
		lockHeld:    make(map[int]trace.LockType),
		pendingLock: make(map[int][]*rmaOp),
		pendingAll:  make(map[int][]*rmaOp),
	}
}

// ID returns the window id as it appears in the trace.
func (w *Win) ID() int32 { return w.s.id }

// Comm returns the communicator the window was created over.
func (w *Win) Comm() *Comm { return w.s.comm }

// LocalBuffer returns the rank's own window buffer.
func (w *Win) LocalBuffer() *memory.Buffer {
	return w.s.locals[w.s.comm.RankOf(w.p)].buf
}

// Free destroys the window collectively (MPI_Win_free). Pending operations
// must have been completed by a synchronization call.
func (w *Win) Free() {
	p := w.p
	rel := w.s.comm.mustMember(p, "Win_free")
	if len(w.pendingFence) > 0 || len(w.lockHeld) > 0 || w.startGroup != nil || w.lockAll {
		p.errorf("Win_free", "window freed with an open epoch or pending operations")
	}
	p.emit(trace.Event{Kind: trace.KindWinFree, Win: w.s.id, Comm: w.s.comm.id}, 1)
	w.s.fences.rendezvous(p, w.s.comm.Size(), rel, "Win_free", nil, func(map[int]any) any { return nil })
}

// queue classifies the operation into the rank's open epoch and defers it.
func (w *Win) queue(call string, op *rmaOp) {
	p := w.p
	op.origin = p.rank
	op.seq = w.issueSeq
	w.issueSeq++
	p.world.metrics.rmaQueued(int32(p.rank))
	switch {
	case w.lockHeld[op.target] != trace.LockNone:
		w.pendingLock[op.target] = append(w.pendingLock[op.target], op)
	case w.lockAll:
		w.pendingAll[op.target] = append(w.pendingAll[op.target], op)
	case w.startGroup != nil && w.startGroup.Contains(w.s.comm.WorldRank(op.target)):
		w.pendingStart = append(w.pendingStart, op)
	case w.fenceCount > 0:
		w.pendingFence = append(w.pendingFence, op)
	default:
		p.errorf(call, "one-sided operation to target %d without an open epoch (no fence, lock, or start)", op.target)
	}
}

func (w *Win) validateTransfer(call string, target int, ot *Datatype, oc int, tt *Datatype, tc int) {
	p := w.p
	if target < 0 || target >= w.s.comm.Size() {
		p.errorf(call, "target rank %d out of range for window communicator of size %d", target, w.s.comm.Size())
	}
	if ot.dm.TileBytes(oc) != tt.dm.TileBytes(tc) {
		p.errorf(call, "origin transfers %d bytes but target describes %d bytes",
			ot.dm.TileBytes(oc), tt.dm.TileBytes(tc))
	}
}

// targetByteOff converts a displacement to a byte offset in the target's
// window buffer.
func (s *winShared) targetByteOff(target int, disp uint64) uint64 {
	return disp * uint64(s.locals[target].dispUnit)
}

// Put transfers originCount elements of originType from the origin buffer
// to targetCount elements of targetType at targetDisp in the target's
// window (MPI_Put). The transfer is nonblocking: it is applied when the
// enclosing epoch closes.
func (w *Win) Put(origin *memory.Buffer, originOff uint64, originCount int, originType *Datatype,
	target int, targetDisp uint64, targetCount int, targetType *Datatype) {
	w.validateTransfer("Put", target, originType, originCount, targetType, targetCount)
	w.checkTargetRange("Put", target, targetDisp, targetType, targetCount)
	w.p.emit(trace.Event{
		Kind: trace.KindPut, Win: w.s.id, Target: int32(target),
		OriginAddr: origin.Addr(originOff), OriginType: originType.id, OriginCount: int32(originCount),
		TargetDisp: targetDisp, TargetType: targetType.id, TargetCount: int32(targetCount),
	}, 1)
	w.queue("Put", &rmaOp{
		kind:      trace.KindPut,
		originBuf: origin, originOff: originOff, originType: originType, originCount: originCount,
		target: target, targetDisp: targetDisp, targetType: targetType, targetCount: targetCount,
	})
}

// Get transfers targetCount elements of targetType from the target's window
// into the origin buffer (MPI_Get). Like Put, it completes only when the
// epoch closes: loading the origin buffer before then reads stale data.
func (w *Win) Get(origin *memory.Buffer, originOff uint64, originCount int, originType *Datatype,
	target int, targetDisp uint64, targetCount int, targetType *Datatype) {
	w.validateTransfer("Get", target, originType, originCount, targetType, targetCount)
	w.checkTargetRange("Get", target, targetDisp, targetType, targetCount)
	w.p.emit(trace.Event{
		Kind: trace.KindGet, Win: w.s.id, Target: int32(target),
		OriginAddr: origin.Addr(originOff), OriginType: originType.id, OriginCount: int32(originCount),
		TargetDisp: targetDisp, TargetType: targetType.id, TargetCount: int32(targetCount),
	}, 1)
	w.queue("Get", &rmaOp{
		kind:      trace.KindGet,
		originBuf: origin, originOff: originOff, originType: originType, originCount: originCount,
		target: target, targetDisp: targetDisp, targetType: targetType, targetCount: targetCount,
	})
}

// Accumulate combines originCount elements of originType into the target
// window with the reduction op (MPI_Accumulate).
func (w *Win) Accumulate(origin *memory.Buffer, originOff uint64, originCount int, originType *Datatype,
	target int, targetDisp uint64, targetCount int, targetType *Datatype, op trace.AccOp) {
	w.validateTransfer("Accumulate", target, originType, originCount, targetType, targetCount)
	w.checkTargetRange("Accumulate", target, targetDisp, targetType, targetCount)
	if op == trace.OpNone {
		w.p.errorf("Accumulate", "missing reduction operation")
	}
	if op != trace.OpReplace {
		if originType.elem == 0 || originType.elem != targetType.elem {
			w.p.errorf("Accumulate", "origin and target datatypes must share a predefined base type")
		}
		es := elemSize(originType.elem)
		for _, s := range originType.dm.Segments {
			if s.Len%es != 0 {
				w.p.errorf("Accumulate", "datatype segment of %d bytes not a multiple of element size %d", s.Len, es)
			}
		}
	}
	w.p.emit(trace.Event{
		Kind: trace.KindAccumulate, Win: w.s.id, Target: int32(target), AccOp: op,
		OriginAddr: origin.Addr(originOff), OriginType: originType.id, OriginCount: int32(originCount),
		TargetDisp: targetDisp, TargetType: targetType.id, TargetCount: int32(targetCount),
	}, 1)
	w.queue("Accumulate", &rmaOp{
		kind:      trace.KindAccumulate,
		originBuf: origin, originOff: originOff, originType: originType, originCount: originCount,
		target: target, targetDisp: targetDisp, targetType: targetType, targetCount: targetCount,
		op: op,
	})
}

func (w *Win) checkTargetRange(call string, target int, disp uint64, tt *Datatype, tc int) {
	tl := w.s.locals[target]
	byteOff := w.s.targetByteOff(target, disp)
	need := byteOff
	if tc > 0 {
		need = byteOff + uint64(tc-1)*tt.dm.Extent + tt.dm.Span()
	}
	if need > tl.buf.Size() {
		w.p.errorf(call, "access through byte %d exceeds target %d window of %d bytes", need, target, tl.buf.Size())
	}
}

// apply performs the deferred data movement of one operation. It runs in
// whichever goroutine closes the epoch; buffer raw methods provide the
// byte-level synchronization.
func (s *winShared) apply(op *rmaOp) {
	if op.kind.IsAccFamily() && op.kind != trace.KindAccumulate {
		s.applyFetching(op)
		return
	}
	tl := s.locals[op.target]
	byteOff := s.targetByteOff(op.target, op.targetDisp)
	switch op.kind {
	case trace.KindPut:
		packed := pack(op.originBuf, op.originOff, op.originType, op.originCount)
		unpack(tl.buf, byteOff, op.targetType, op.targetCount, packed)
	case trace.KindGet:
		packed := pack(tl.buf, byteOff, op.targetType, op.targetCount)
		unpack(op.originBuf, op.originOff, op.originType, op.originCount, packed)
	case trace.KindAccumulate:
		packed := pack(op.originBuf, op.originOff, op.originType, op.originCount)
		if op.op == trace.OpReplace {
			unpack(tl.buf, byteOff, op.targetType, op.targetCount, packed)
			return
		}
		// Read-modify-write each target segment under the buffer lock.
		pos := 0
		for e := 0; e < op.targetCount; e++ {
			origin := byteOff + uint64(e)*op.targetType.dm.Extent
			for _, seg := range op.targetType.dm.Segments {
				chunk := packed[pos : pos+int(seg.Len)]
				tl.buf.UpdateRaw(origin+seg.Disp, seg.Len, func(data []byte) {
					combine(data, chunk, op.targetType.elem, op.op)
				})
				pos += int(seg.Len)
			}
		}
	}
}

// applyAll applies ops in deterministic (origin rank, issue seq) order.
// MPI leaves the order among conflicting unordered operations undefined;
// fixing it keeps runs reproducible without legitimizing programs that
// depend on it. An armed schedule plan (reorder, prio, chg, delay) picks
// a different but equally legal completion order for the batch, still
// deterministic in the plan's clauses and seed.
func (s *winShared) applyAll(ops []*rmaOp) {
	s.comm.world.metrics.rmaFlushed(len(ops))
	if len(ops) == 0 {
		return
	}
	batch := int(s.batchSeq.Add(1) - 1)
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].origin != ops[j].origin {
			return ops[i].origin < ops[j].origin
		}
		return ops[i].seq < ops[j].seq
	})
	s.comm.world.scheduleBatch(s.id, batch, ops)
	for _, op := range ops {
		s.apply(op)
	}
}
