package mpi

import (
	"sort"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Barrier blocks until all members of c have entered it (MPI_Barrier).
func (p *Proc) Barrier(c *Comm) {
	rel := c.mustMember(p, "Barrier")
	p.emit(trace.Event{Kind: trace.KindBarrier, Comm: c.id}, 1)
	c.coll.rendezvous(p, c.Size(), rel, "Barrier", nil, func(map[int]any) any { return nil })
}

// Bcast broadcasts count elements of dtype from root's buffer to every
// member's buffer (MPI_Bcast).
func (p *Proc) Bcast(c *Comm, buf *memory.Buffer, off uint64, count int, dtype *Datatype, root int) {
	rel := c.mustMember(p, "Bcast")
	p.emit(trace.Event{
		Kind: trace.KindBcast, Comm: c.id, Peer: int32(root),
		OriginAddr: buf.Addr(off), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	var deposit any
	if rel == root {
		deposit = pack(buf, off, dtype, count)
	}
	result := c.coll.rendezvous(p, c.Size(), rel, "Bcast", deposit, func(slots map[int]any) any {
		return slots[root]
	})
	if rel != root {
		unpack(buf, off, dtype, count, result.([]byte))
	}
}

// Reduce combines count elements from every member with op and stores the
// result into root's recv buffer (MPI_Reduce).
func (p *Proc) Reduce(c *Comm, send *memory.Buffer, sendOff uint64, recv *memory.Buffer, recvOff uint64,
	count int, dtype *Datatype, op trace.AccOp, root int) {
	rel := c.mustMember(p, "Reduce")
	if dtype.elem == 0 {
		p.errorf("Reduce", "datatype %d has no arithmetic base type", dtype.id)
	}
	p.emit(trace.Event{
		Kind: trace.KindReduce, Comm: c.id, Peer: int32(root), AccOp: op,
		OriginAddr: send.Addr(sendOff), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	result := c.coll.rendezvous(p, c.Size(), rel, "Reduce", pack(send, sendOff, dtype, count),
		func(slots map[int]any) any { return reduceSlots(slots, dtype.elem, op) })
	if rel == root {
		unpack(recv, recvOff, dtype, count, result.([]byte))
	}
}

// Allreduce is Reduce delivering the result to every member (MPI_Allreduce).
func (p *Proc) Allreduce(c *Comm, send *memory.Buffer, sendOff uint64, recv *memory.Buffer, recvOff uint64,
	count int, dtype *Datatype, op trace.AccOp) {
	rel := c.mustMember(p, "Allreduce")
	if dtype.elem == 0 {
		p.errorf("Allreduce", "datatype %d has no arithmetic base type", dtype.id)
	}
	p.emit(trace.Event{
		Kind: trace.KindAllreduce, Comm: c.id, AccOp: op,
		OriginAddr: send.Addr(sendOff), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	result := c.coll.rendezvous(p, c.Size(), rel, "Allreduce", pack(send, sendOff, dtype, count),
		func(slots map[int]any) any { return reduceSlots(slots, dtype.elem, op) })
	unpack(recv, recvOff, dtype, count, result.([]byte))
}

// reduceSlots combines deposited packed byte slices in ascending rank order.
func reduceSlots(slots map[int]any, elem int32, op trace.AccOp) []byte {
	ranks := make([]int, 0, len(slots))
	for r := range slots {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	acc := append([]byte(nil), slots[ranks[0]].([]byte)...)
	for _, r := range ranks[1:] {
		combine(acc, slots[r].([]byte), elem, op)
	}
	return acc
}

// Gather collects count elements from every member into root's recv buffer,
// placed in rank order (MPI_Gather). recv is ignored on non-root ranks.
func (p *Proc) Gather(c *Comm, send *memory.Buffer, sendOff uint64, count int, dtype *Datatype,
	recv *memory.Buffer, recvOff uint64, root int) {
	rel := c.mustMember(p, "Gather")
	p.emit(trace.Event{
		Kind: trace.KindGather, Comm: c.id, Peer: int32(root),
		OriginAddr: send.Addr(sendOff), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	result := c.coll.rendezvous(p, c.Size(), rel, "Gather", pack(send, sendOff, dtype, count),
		func(slots map[int]any) any { return slots })
	if rel == root {
		slots := result.(map[int]any)
		stride := dtype.dm.Extent * uint64(count)
		for r := 0; r < c.Size(); r++ {
			unpack(recv, recvOff+uint64(r)*stride, dtype, count, slots[r].([]byte))
		}
	}
}

// Scatter distributes consecutive count-element chunks of root's send
// buffer to the members in rank order (MPI_Scatter).
func (p *Proc) Scatter(c *Comm, send *memory.Buffer, sendOff uint64, count int, dtype *Datatype,
	recv *memory.Buffer, recvOff uint64, root int) {
	rel := c.mustMember(p, "Scatter")
	p.emit(trace.Event{
		Kind: trace.KindScatter, Comm: c.id, Peer: int32(root),
		OriginAddr: recv.Addr(recvOff), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	var deposit any
	if rel == root {
		chunks := make([][]byte, c.Size())
		stride := dtype.dm.Extent * uint64(count)
		for r := 0; r < c.Size(); r++ {
			chunks[r] = pack(send, sendOff+uint64(r)*stride, dtype, count)
		}
		deposit = chunks
	}
	result := c.coll.rendezvous(p, c.Size(), rel, "Scatter", deposit,
		func(slots map[int]any) any { return slots[root] })
	chunks := result.([][]byte)
	unpack(recv, recvOff, dtype, count, chunks[rel])
}

// Allgather collects count elements from every member into every member's
// recv buffer, in rank order (MPI_Allgather).
func (p *Proc) Allgather(c *Comm, send *memory.Buffer, sendOff uint64, count int, dtype *Datatype,
	recv *memory.Buffer, recvOff uint64) {
	rel := c.mustMember(p, "Allgather")
	p.emit(trace.Event{
		Kind: trace.KindAllgather, Comm: c.id,
		OriginAddr: send.Addr(sendOff), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	result := c.coll.rendezvous(p, c.Size(), rel, "Allgather", pack(send, sendOff, dtype, count),
		func(slots map[int]any) any { return slots })
	slots := result.(map[int]any)
	stride := dtype.dm.Extent * uint64(count)
	for r := 0; r < c.Size(); r++ {
		unpack(recv, recvOff+uint64(r)*stride, dtype, count, slots[r].([]byte))
	}
}

// Scan computes the inclusive prefix reduction: member r receives the
// combination of the contributions of ranks 0..r (MPI_Scan). It is modelled
// as a to-root collective for ordering purposes: rank r's result depends on
// all lower ranks, so the trace event uses the Allreduce kind's barrier-like
// matching via its own kind entry.
func (p *Proc) Scan(c *Comm, send *memory.Buffer, sendOff uint64, recv *memory.Buffer, recvOff uint64,
	count int, dtype *Datatype, op trace.AccOp) {
	rel := c.mustMember(p, "Scan")
	if dtype.elem == 0 {
		p.errorf("Scan", "datatype %d has no arithmetic base type", dtype.id)
	}
	p.emit(trace.Event{
		Kind: trace.KindAllreduce, Comm: c.id, AccOp: op,
		OriginAddr: send.Addr(sendOff), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	result := c.coll.rendezvous(p, c.Size(), rel, "Scan", pack(send, sendOff, dtype, count),
		func(slots map[int]any) any { return slots })
	slots := result.(map[int]any)
	acc := append([]byte(nil), slots[0].([]byte)...)
	for r := 1; r <= rel; r++ {
		combine(acc, slots[r].([]byte), dtype.elem, op)
	}
	unpack(recv, recvOff, dtype, count, acc)
}

// Waitall completes a set of nonblocking requests (MPI_Waitall).
func (p *Proc) Waitall(reqs []*Request) []Status {
	out := make([]Status, len(reqs))
	q := p.WithCallDepth(1)
	for i, req := range reqs {
		out[i] = q.Wait(req)
	}
	return out
}

// Alltoall sends the r-th count-element chunk of each member's send buffer
// to member r, gathering incoming chunks in rank order (MPI_Alltoall).
func (p *Proc) Alltoall(c *Comm, send *memory.Buffer, sendOff uint64, count int, dtype *Datatype,
	recv *memory.Buffer, recvOff uint64) {
	rel := c.mustMember(p, "Alltoall")
	p.emit(trace.Event{
		Kind: trace.KindAlltoall, Comm: c.id,
		OriginAddr: send.Addr(sendOff), OriginType: dtype.id, OriginCount: int32(count),
	}, 1)
	chunks := make([][]byte, c.Size())
	stride := dtype.dm.Extent * uint64(count)
	for r := 0; r < c.Size(); r++ {
		chunks[r] = pack(send, sendOff+uint64(r)*stride, dtype, count)
	}
	result := c.coll.rendezvous(p, c.Size(), rel, "Alltoall", chunks,
		func(slots map[int]any) any { return slots })
	slots := result.(map[int]any)
	for r := 0; r < c.Size(); r++ {
		unpack(recv, recvOff+uint64(r)*stride, dtype, count, slots[r].([][]byte)[rel])
	}
}
