package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Datatype describes the memory layout of message and RMA elements as a
// data-map (paper §IV-C-1c), plus the predefined base type used for
// reduction arithmetic.
type Datatype struct {
	id   int32
	dm   memory.DataMap
	elem int32 // predefined base type id; 0 when heterogeneous
}

// Predefined datatypes. Their ids are fixed constants shared with the
// analyzer (trace.TypeByte etc.).
var (
	Byte    = &Datatype{id: trace.TypeByte, dm: memory.Contig(1), elem: trace.TypeByte}
	Int32   = &Datatype{id: trace.TypeInt32, dm: memory.Contig(4), elem: trace.TypeInt32}
	Int64   = &Datatype{id: trace.TypeInt64, dm: memory.Contig(8), elem: trace.TypeInt64}
	Float32 = &Datatype{id: trace.TypeFloat32, dm: memory.Contig(4), elem: trace.TypeFloat32}
	Float64 = &Datatype{id: trace.TypeFloat64, dm: memory.Contig(8), elem: trace.TypeFloat64}
)

// ID returns the datatype id as it appears in the trace.
func (d *Datatype) ID() int32 { return d.id }

// Map returns the datatype's data-map.
func (d *Datatype) Map() memory.DataMap { return d.dm }

// Size returns the number of bytes one element actually transfers.
func (d *Datatype) Size() uint64 { return d.dm.Size() }

// Extent returns the stride between consecutive elements.
func (d *Datatype) Extent() uint64 { return d.dm.Extent }

func elemSize(elem int32) uint64 {
	dm, ok := trace.PredefinedType(elem)
	if !ok {
		return 0
	}
	return dm.Size()
}

// registerType emits the datatype-definition event and returns the type.
func (p *Proc) registerType(dm memory.DataMap, elem int32) *Datatype {
	d := &Datatype{id: p.allocTypeID(), dm: dm.Normalize(), elem: elem}
	p.emit(trace.Event{
		Kind:    trace.KindTypeCreate,
		TypeID:  d.id,
		TypeMap: d.dm,
	}, 2)
	return d
}

// TypeContiguous builds a datatype of count consecutive base elements
// (MPI_Type_contiguous).
func (p *Proc) TypeContiguous(count int, base *Datatype) *Datatype {
	if count <= 0 {
		p.errorf("Type_contiguous", "count %d must be positive", count)
	}
	var segs []memory.Segment
	for e := 0; e < count; e++ {
		origin := uint64(e) * base.dm.Extent
		for _, s := range base.dm.Segments {
			segs = append(segs, memory.Segment{Disp: origin + s.Disp, Len: s.Len})
		}
	}
	dm := memory.DataMap{Segments: segs, Extent: uint64(count) * base.dm.Extent}
	return p.registerType(dm, base.elem)
}

// TypeVector builds count blocks of blocklen base elements with a stride of
// stride base extents between block starts (MPI_Type_vector).
func (p *Proc) TypeVector(count, blocklen, stride int, base *Datatype) *Datatype {
	if count <= 0 || blocklen <= 0 || stride < blocklen {
		p.errorf("Type_vector", "invalid count=%d blocklen=%d stride=%d", count, blocklen, stride)
	}
	var segs []memory.Segment
	for b := 0; b < count; b++ {
		blockOrigin := uint64(b) * uint64(stride) * base.dm.Extent
		for e := 0; e < blocklen; e++ {
			origin := blockOrigin + uint64(e)*base.dm.Extent
			for _, s := range base.dm.Segments {
				segs = append(segs, memory.Segment{Disp: origin + s.Disp, Len: s.Len})
			}
		}
	}
	extent := (uint64(count-1)*uint64(stride) + uint64(blocklen)) * base.dm.Extent
	dm := memory.DataMap{Segments: segs, Extent: extent}
	return p.registerType(dm, base.elem)
}

// TypeIndexed builds blocks of blocklens[i] base elements at displacements
// disps[i] (in base extents) (MPI_Type_indexed).
func (p *Proc) TypeIndexed(blocklens, disps []int, base *Datatype) *Datatype {
	if len(blocklens) != len(disps) || len(blocklens) == 0 {
		p.errorf("Type_indexed", "blocklens and disps must be non-empty and equal length")
	}
	var segs []memory.Segment
	var maxEnd uint64
	for i := range blocklens {
		if blocklens[i] <= 0 || disps[i] < 0 {
			p.errorf("Type_indexed", "invalid block %d: len=%d disp=%d", i, blocklens[i], disps[i])
		}
		blockOrigin := uint64(disps[i]) * base.dm.Extent
		for e := 0; e < blocklens[i]; e++ {
			origin := blockOrigin + uint64(e)*base.dm.Extent
			for _, s := range base.dm.Segments {
				segs = append(segs, memory.Segment{Disp: origin + s.Disp, Len: s.Len})
			}
		}
		end := blockOrigin + uint64(blocklens[i])*base.dm.Extent
		if end > maxEnd {
			maxEnd = end
		}
	}
	dm := memory.DataMap{Segments: segs, Extent: maxEnd}
	return p.registerType(dm, base.elem)
}

// TypeSubarray2D builds a datatype selecting the srows×scols block starting
// at (startRow, startCol) of a row-major rows×cols array of base elements
// (the two-dimensional case of MPI_Type_create_subarray, the datatype halo
// exchanges use).
func (p *Proc) TypeSubarray2D(rows, cols, srows, scols, startRow, startCol int, base *Datatype) *Datatype {
	if rows <= 0 || cols <= 0 || srows <= 0 || scols <= 0 ||
		startRow < 0 || startCol < 0 || startRow+srows > rows || startCol+scols > cols {
		p.errorf("Type_create_subarray", "invalid subarray %dx%d at (%d,%d) of %dx%d",
			srows, scols, startRow, startCol, rows, cols)
	}
	var segs []memory.Segment
	for r := 0; r < srows; r++ {
		rowOrigin := uint64((startRow+r)*cols+startCol) * base.dm.Extent
		for e := 0; e < scols; e++ {
			origin := rowOrigin + uint64(e)*base.dm.Extent
			for _, s := range base.dm.Segments {
				segs = append(segs, memory.Segment{Disp: origin + s.Disp, Len: s.Len})
			}
		}
	}
	dm := memory.DataMap{Segments: segs, Extent: uint64(rows*cols) * base.dm.Extent}
	return p.registerType(dm, base.elem)
}

// TypeStruct builds a general structure datatype from byte displacements
// (MPI_Type_create_struct). The element base is preserved only when all
// component types share it; otherwise the result cannot be used with
// Accumulate or reductions.
func (p *Proc) TypeStruct(blocklens []int, byteDisps []uint64, types []*Datatype) *Datatype {
	if len(blocklens) != len(byteDisps) || len(blocklens) != len(types) || len(blocklens) == 0 {
		p.errorf("Type_struct", "argument arrays must be non-empty and equal length")
	}
	elem := types[0].elem
	var segs []memory.Segment
	var maxEnd uint64
	for i := range blocklens {
		if types[i].elem != elem {
			elem = 0
		}
		for e := 0; e < blocklens[i]; e++ {
			origin := byteDisps[i] + uint64(e)*types[i].dm.Extent
			for _, s := range types[i].dm.Segments {
				segs = append(segs, memory.Segment{Disp: origin + s.Disp, Len: s.Len})
			}
		}
		end := byteDisps[i] + uint64(blocklens[i])*types[i].dm.Extent
		if end > maxEnd {
			maxEnd = end
		}
	}
	dm := memory.DataMap{Segments: segs, Extent: maxEnd}
	return p.registerType(dm, elem)
}

// pack reads count elements of type d from buf starting at byte offset off
// into a contiguous byte slice, using untracked runtime reads.
func pack(buf *memory.Buffer, off uint64, d *Datatype, count int) []byte {
	out := make([]byte, d.dm.TileBytes(count))
	pos := 0
	for e := 0; e < count; e++ {
		origin := off + uint64(e)*d.dm.Extent
		for _, s := range d.dm.Segments {
			buf.ReadRaw(origin+s.Disp, out[pos:pos+int(s.Len)])
			pos += int(s.Len)
		}
	}
	return out
}

// unpack writes packed contiguous bytes into count elements of type d in
// buf starting at byte offset off, using untracked runtime writes.
func unpack(buf *memory.Buffer, off uint64, d *Datatype, count int, packed []byte) {
	pos := 0
	for e := 0; e < count; e++ {
		origin := off + uint64(e)*d.dm.Extent
		for _, s := range d.dm.Segments {
			buf.WriteRaw(origin+s.Disp, packed[pos:pos+int(s.Len)])
			pos += int(s.Len)
		}
	}
}

// combine applies dst[i] = dst[i] OP src[i] lane-wise for the predefined
// element type. Both slices must be lane-aligned and equal length.
func combine(dst, src []byte, elem int32, op trace.AccOp) {
	if op == trace.OpReplace {
		copy(dst, src)
		return
	}
	switch elem {
	case trace.TypeFloat64:
		for i := 0; i+8 <= len(dst); i += 8 {
			d := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
			s := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(combineF64(d, s, op)))
		}
	case trace.TypeFloat32:
		for i := 0; i+4 <= len(dst); i += 4 {
			d := math.Float32frombits(binary.LittleEndian.Uint32(dst[i:]))
			s := math.Float32frombits(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(dst[i:], math.Float32bits(float32(combineF64(float64(d), float64(s), op))))
		}
	case trace.TypeInt32:
		for i := 0; i+4 <= len(dst); i += 4 {
			d := int64(int32(binary.LittleEndian.Uint32(dst[i:])))
			s := int64(int32(binary.LittleEndian.Uint32(src[i:])))
			binary.LittleEndian.PutUint32(dst[i:], uint32(int32(combineI64(d, s, op))))
		}
	case trace.TypeInt64:
		for i := 0; i+8 <= len(dst); i += 8 {
			d := int64(binary.LittleEndian.Uint64(dst[i:]))
			s := int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], uint64(combineI64(d, s, op)))
		}
	case trace.TypeByte:
		for i := range dst {
			dst[i] = byte(combineI64(int64(dst[i]), int64(src[i]), op))
		}
	default:
		panic(fmt.Sprintf("mpi: combine on non-arithmetic element type %d", elem))
	}
}

func combineF64(d, s float64, op trace.AccOp) float64 {
	switch op {
	case trace.OpSum:
		return d + s
	case trace.OpProd:
		return d * s
	case trace.OpMax:
		return math.Max(d, s)
	case trace.OpMin:
		return math.Min(d, s)
	default:
		panic(fmt.Sprintf("mpi: unsupported reduction op %v", op))
	}
}

func combineI64(d, s int64, op trace.AccOp) int64 {
	switch op {
	case trace.OpSum:
		return d + s
	case trace.OpProd:
		return d * s
	case trace.OpMax:
		if d > s {
			return d
		}
		return s
	case trace.OpMin:
		if d < s {
			return d
		}
		return s
	default:
		panic(fmt.Sprintf("mpi: unsupported reduction op %v", op))
	}
}
