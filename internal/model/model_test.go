package model

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func TestBuildRegistries(t *testing.T) {
	b := testutil.NewTraceBuilder(3)
	// Rank 0 creates a derived type; all ranks create window 1; ranks 1,2
	// form a sub-communicator 5.
	b.Add(0, trace.Event{Kind: trace.KindTypeCreate, TypeID: trace.TypeUserBase,
		TypeMap: memory.DataMap{Segments: []memory.Segment{{Disp: 0, Len: 4}, {Disp: 12, Len: 4}}, Extent: 16}})
	b.WinCreate(1, 0x1000, 64)
	b.Add(1, trace.Event{Kind: trace.KindCommCreate, Comm: 5, Members: []int32{1, 2}})
	b.Add(2, trace.Event{Kind: trace.KindCommCreate, Comm: 5, Members: []int32{1, 2}})

	m, err := Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}

	// Implicit world communicator.
	world, err := m.Comm(0)
	if err != nil || world.Size() != 3 {
		t.Fatalf("world comm: %v %v", world, err)
	}
	w2, err := world.World(2)
	if err != nil || w2 != 2 {
		t.Errorf("world translate: %d %v", w2, err)
	}

	// User communicator: relative rank 1 is world rank 2.
	sub, err := m.Comm(5)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sub.World(1); got != 2 {
		t.Errorf("sub comm translate = %d", got)
	}
	if _, err := sub.World(9); err == nil {
		t.Error("out-of-range rel rank must error")
	}

	// Window registry.
	wi, err := m.Win(1)
	if err != nil {
		t.Fatal(err)
	}
	if wi.Comm != 0 || len(wi.Locals) != 3 {
		t.Errorf("win info = %+v", wi)
	}
	if wi.Locals[1].Size != 64 || wi.Locals[1].DispUnit != 1 {
		t.Errorf("win local = %+v", wi.Locals[1])
	}

	// Datatype registry: predefined and user.
	dm, err := m.Type(0, trace.TypeFloat64)
	if err != nil || dm.Size() != 8 {
		t.Errorf("predefined type: %v %v", dm, err)
	}
	dm, err = m.Type(0, trace.TypeUserBase)
	if err != nil || dm.Size() != 8 || len(dm.Segments) != 2 {
		t.Errorf("user type: %v %v", dm, err)
	}
	// User type ids are per defining rank.
	if _, err := m.Type(1, trace.TypeUserBase); err == nil {
		t.Error("rank 1 must not see rank 0's user type")
	}
	if _, err := m.Comm(99); err == nil {
		t.Error("unknown comm must error")
	}
	if _, err := m.Win(99); err == nil {
		t.Error("unknown window must error")
	}
}

func TestBuildRejectsConflicts(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.Add(0, trace.Event{Kind: trace.KindCommCreate, Comm: 5, Members: []int32{0, 1}})
	b.Add(1, trace.Event{Kind: trace.KindCommCreate, Comm: 5, Members: []int32{1, 0}})
	if _, err := Build(b.Set()); err == nil {
		t.Error("conflicting comm membership must error")
	}

	b = testutil.NewTraceBuilder(1)
	b.Add(0, trace.Event{Kind: trace.KindTypeCreate, TypeID: trace.TypeUserBase, TypeMap: memory.Contig(4)})
	b.Add(0, trace.Event{Kind: trace.KindTypeCreate, TypeID: trace.TypeUserBase, TypeMap: memory.Contig(8)})
	if _, err := Build(b.Set()); err == nil {
		t.Error("datatype redefinition must error")
	}

	b = testutil.NewTraceBuilder(1)
	b.Add(0, trace.Event{Kind: trace.KindWinCreate, Win: 1, Comm: 0, WinBase: 0, WinSize: 8, DispUnit: 1})
	b.Add(0, trace.Event{Kind: trace.KindWinCreate, Win: 1, Comm: 0, WinBase: 64, WinSize: 8, DispUnit: 1})
	if _, err := Build(b.Set()); err == nil {
		t.Error("duplicate window definition must error")
	}
}

func TestFootprints(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(7, 0x2000, 128) // disp unit 1
	putID := b.Add(0, trace.Event{
		Kind: trace.KindPut, Win: 7, Target: 1,
		OriginAddr: 0x500, OriginType: trace.TypeFloat64, OriginCount: 2,
		TargetDisp: 16, TargetType: trace.TypeFloat64, TargetCount: 2,
	})
	m, err := Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	put := m.Set.Get(putID)

	tw, err := m.TargetWorld(put)
	if err != nil || tw != 1 {
		t.Errorf("target world = %d, %v", tw, err)
	}
	tf, err := m.TargetFootprint(put)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Rank != 1 || len(tf.Intervals) != 1 || tf.Intervals[0] != memory.Iv(0x2000+16, 16) {
		t.Errorf("target footprint = %+v", tf)
	}
	of, err := m.OriginFootprint(put)
	if err != nil {
		t.Fatal(err)
	}
	if of.Rank != 0 || of.Intervals[0] != memory.Iv(0x500, 16) {
		t.Errorf("origin footprint = %+v", of)
	}

	// Footprint overlap requires the same rank.
	a := Footprint{Rank: 0, Intervals: []memory.Interval{memory.Iv(0, 10)}}
	c := Footprint{Rank: 1, Intervals: []memory.Interval{memory.Iv(0, 10)}}
	if _, ok := a.Overlaps(c); ok {
		t.Error("different ranks must never overlap")
	}
	d := Footprint{Rank: 0, Intervals: []memory.Interval{memory.Iv(5, 1)}}
	if iv, ok := a.Overlaps(d); !ok || iv != memory.Iv(5, 1) {
		t.Errorf("overlap = %v %v", iv, ok)
	}
}

func TestAccessFootprintAndWindowAt(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(3, 0x4000, 64)
	ld := b.Add(1, trace.Event{Kind: trace.KindLoad, Addr: 0x4010, Size: 8})
	m, err := Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	f := AccessFootprint(m.Set.Get(ld))
	if f.Rank != 1 || f.Intervals[0] != memory.Iv(0x4010, 8) {
		t.Errorf("access footprint = %+v", f)
	}
	wi, ok := m.WindowAt(1, f.Intervals[0])
	if !ok || wi.ID != 3 {
		t.Errorf("WindowAt = %v %v", wi, ok)
	}
	if _, ok := m.WindowAt(1, memory.Iv(0x9000, 4)); ok {
		t.Error("address outside windows matched")
	}
}

func TestTargetFootprintErrors(t *testing.T) {
	b := testutil.NewTraceBuilder(2)
	bar := b.Add(0, trace.Event{Kind: trace.KindBarrier, Comm: 0})
	b.Add(1, trace.Event{Kind: trace.KindBarrier, Comm: 0})
	put := b.Add(0, trace.Event{Kind: trace.KindPut, Win: 42, Target: 1,
		OriginType: trace.TypeByte, TargetType: trace.TypeByte, OriginCount: 1, TargetCount: 1})
	m, err := Build(b.Set())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TargetFootprint(m.Set.Get(put)); err == nil {
		t.Error("unknown window must error")
	}
	if _, err := m.TargetFootprint(m.Set.Get(bar)); err == nil {
		t.Error("non-RMA event must error")
	}
}
