// Package model implements DN-Analyzer's trace preprocessing
// (paper §IV-C-1): before error checking, the analyzer scans the per-rank
// traces and rebuilds the registries the later stages consult —
// communicators and groups (translating communicator-relative ranks to
// absolute world ranks), window buffers (handle → per-rank base address,
// size, displacement unit), and datatypes (handle → data-map).
package model

import (
	"fmt"
	"strconv"

	"repro/internal/memory"
	"repro/internal/obs/tracing"
	"repro/internal/par"
	"repro/internal/trace"
)

// CommInfo describes one communicator: Members[rel] is the world rank of
// communicator-relative rank rel.
type CommInfo struct {
	ID      int32
	Members []int32
}

// Size returns the number of member processes.
func (c *CommInfo) Size() int { return len(c.Members) }

// World translates a communicator-relative rank to a world rank.
func (c *CommInfo) World(rel int32) (int32, error) {
	if rel < 0 || int(rel) >= len(c.Members) {
		return 0, fmt.Errorf("model: rank %d out of range for communicator %d of size %d",
			rel, c.ID, len(c.Members))
	}
	return c.Members[rel], nil
}

// WinLocal is one rank's side of an RMA window.
type WinLocal struct {
	Base     uint64
	Size     uint64
	DispUnit uint32
}

// Interval returns the window buffer's simulated address range.
func (wl WinLocal) Interval() memory.Interval { return memory.Iv(wl.Base, wl.Size) }

// WinInfo describes one RMA window across all participating ranks.
type WinInfo struct {
	ID     int32
	Comm   int32
	Locals map[int32]WinLocal // keyed by world rank
}

// Model is the preprocessed view of a trace set.
type Model struct {
	Set   *trace.Set
	Comms map[int32]*CommInfo
	Wins  map[int32]*WinInfo
	types map[typeKey]memory.DataMap
}

type typeKey struct {
	rank int32
	id   int32
}

// Build scans the trace set and constructs the registries. It validates
// definition events for consistency (duplicate window definitions with
// conflicting communicators, datatype redefinitions).
func Build(set *trace.Set) (*Model, error) { return BuildWorkers(set, 1) }

// BuildWorkers is Build with the per-rank scans fanned out over a worker
// pool: validation and the definition-event sweep are per-rank
// independent, so only the registry merge runs serially. Definition
// events are merged in (rank, sequence) order — exactly the order the
// serial scan visits them — so the registries, and any conflict error,
// are identical whatever the worker count.
func BuildWorkers(set *trace.Set, workers int) (*Model, error) {
	return BuildWorkersTraced(set, workers, nil)
}

// BuildWorkersTraced is BuildWorkers with each rank's validation+sweep
// recorded as a span on tr (track "model"). tr may be nil.
func BuildWorkersTraced(set *trace.Set, workers int, tr *tracing.Recorder) (*Model, error) {
	if err := set.ValidateWorkers(workers); err != nil {
		return nil, err
	}
	m := &Model{
		Set:   set,
		Comms: make(map[int32]*CommInfo),
		Wins:  make(map[int32]*WinInfo),
		types: make(map[typeKey]memory.DataMap),
	}
	// MPI_COMM_WORLD is implicit.
	world := &CommInfo{ID: 0, Members: make([]int32, set.Ranks())}
	for r := range world.Members {
		world.Members[r] = int32(r)
	}
	m.Comms[0] = world

	// Parallel sweep: collect each rank's definition events (a tiny
	// fraction of the trace) without touching shared state.
	defs := make([][]*trace.Event, len(set.Traces))
	scope := func(r int) string { return fmt.Sprintf("rank %d", r) }
	_ = par.RanksTraced(len(set.Traces), workers, tr, "model", scope, func(r int, sp *tracing.Span) error {
		t := set.Traces[r]
		for i := range t.Events {
			switch t.Events[i].Kind {
			case trace.KindCommCreate, trace.KindWinCreate, trace.KindTypeCreate:
				defs[r] = append(defs[r], &t.Events[i])
			}
		}
		if sp != nil {
			sp.Annotate("events", strconv.Itoa(len(t.Events)))
			sp.Annotate("defs", strconv.Itoa(len(defs[r])))
		}
		return nil
	})

	// Serial merge in (rank, seq) order.
	for _, rankDefs := range defs {
		for _, ev := range rankDefs {
			switch ev.Kind {
			case trace.KindCommCreate:
				if err := m.addComm(ev); err != nil {
					return nil, err
				}
			case trace.KindWinCreate:
				if err := m.addWin(ev); err != nil {
					return nil, err
				}
			case trace.KindTypeCreate:
				key := typeKey{rank: ev.Rank, id: ev.TypeID}
				if _, dup := m.types[key]; dup {
					return nil, fmt.Errorf("model: rank %d redefines datatype %d at %s",
						ev.Rank, ev.TypeID, ev.Loc())
				}
				m.types[key] = ev.TypeMap
			}
		}
	}
	return m, nil
}

func (m *Model) addComm(ev *trace.Event) error {
	if existing, ok := m.Comms[ev.Comm]; ok {
		if len(existing.Members) != len(ev.Members) {
			return fmt.Errorf("model: communicator %d defined with conflicting memberships", ev.Comm)
		}
		for i := range existing.Members {
			if existing.Members[i] != ev.Members[i] {
				return fmt.Errorf("model: communicator %d defined with conflicting memberships", ev.Comm)
			}
		}
		return nil
	}
	m.Comms[ev.Comm] = &CommInfo{ID: ev.Comm, Members: append([]int32(nil), ev.Members...)}
	return nil
}

func (m *Model) addWin(ev *trace.Event) error {
	wi, ok := m.Wins[ev.Win]
	if !ok {
		wi = &WinInfo{ID: ev.Win, Comm: ev.Comm, Locals: make(map[int32]WinLocal)}
		m.Wins[ev.Win] = wi
	}
	if wi.Comm != ev.Comm {
		return fmt.Errorf("model: window %d created on both communicator %d and %d", ev.Win, wi.Comm, ev.Comm)
	}
	if _, dup := wi.Locals[ev.Rank]; dup {
		return fmt.Errorf("model: rank %d defines window %d twice", ev.Rank, ev.Win)
	}
	wi.Locals[ev.Rank] = WinLocal{Base: ev.WinBase, Size: ev.WinSize, DispUnit: ev.DispUnit}
	return nil
}

// Comm returns the communicator registry entry.
func (m *Model) Comm(id int32) (*CommInfo, error) {
	c, ok := m.Comms[id]
	if !ok {
		return nil, fmt.Errorf("model: unknown communicator %d", id)
	}
	return c, nil
}

// Win returns the window registry entry.
func (m *Model) Win(id int32) (*WinInfo, error) {
	w, ok := m.Wins[id]
	if !ok {
		return nil, fmt.Errorf("model: unknown window %d", id)
	}
	return w, nil
}

// Type resolves a datatype id used by a rank to its data-map: predefined
// ids resolve globally, user-defined ids per defining rank.
func (m *Model) Type(rank, id int32) (memory.DataMap, error) {
	if dm, ok := trace.PredefinedType(id); ok {
		return dm, nil
	}
	dm, ok := m.types[typeKey{rank: rank, id: id}]
	if !ok {
		return memory.DataMap{}, fmt.Errorf("model: rank %d uses undefined datatype %d", rank, id)
	}
	return dm, nil
}

// Footprint is the set of byte intervals one memory operation touches in
// one rank's address space.
type Footprint struct {
	Rank      int32 // world rank owning the address space
	Intervals []memory.Interval
}

// Overlaps reports whether two footprints share bytes; both must be in the
// same rank's address space to overlap.
func (f Footprint) Overlaps(o Footprint) (memory.Interval, bool) {
	if f.Rank != o.Rank {
		return memory.Interval{}, false
	}
	i, j := 0, 0
	for i < len(f.Intervals) && j < len(o.Intervals) {
		if x, ok := f.Intervals[i].Intersect(o.Intervals[j]); ok {
			return x, true
		}
		if f.Intervals[i].Hi <= o.Intervals[j].Hi {
			i++
		} else {
			j++
		}
	}
	return memory.Interval{}, false
}

// TargetWorld resolves the world rank an RMA operation targets.
func (m *Model) TargetWorld(ev *trace.Event) (int32, error) {
	wi, err := m.Win(ev.Win)
	if err != nil {
		return 0, err
	}
	ci, err := m.Comm(wi.Comm)
	if err != nil {
		return 0, err
	}
	return ci.World(ev.Target)
}

// TargetFootprint computes the window-buffer bytes an RMA operation touches
// at the target.
func (m *Model) TargetFootprint(ev *trace.Event) (Footprint, error) {
	if !ev.Kind.IsRMAComm() {
		return Footprint{}, fmt.Errorf("model: %v is not an RMA operation", ev.Kind)
	}
	wi, err := m.Win(ev.Win)
	if err != nil {
		return Footprint{}, err
	}
	tw, err := m.TargetWorld(ev)
	if err != nil {
		return Footprint{}, err
	}
	local, ok := wi.Locals[tw]
	if !ok {
		return Footprint{}, fmt.Errorf("model: window %d has no local buffer at rank %d", ev.Win, tw)
	}
	dm, err := m.Type(ev.Rank, ev.TargetType)
	if err != nil {
		return Footprint{}, err
	}
	base := local.Base + ev.TargetDisp*uint64(local.DispUnit)
	return Footprint{Rank: tw, Intervals: dm.Tile(base, int(ev.TargetCount))}, nil
}

// OriginFootprint computes the local-buffer bytes an RMA operation (or a
// p2p/collective call) touches at the origin rank.
func (m *Model) OriginFootprint(ev *trace.Event) (Footprint, error) {
	dm, err := m.Type(ev.Rank, ev.OriginType)
	if err != nil {
		return Footprint{}, err
	}
	return Footprint{Rank: ev.Rank, Intervals: dm.Tile(ev.OriginAddr, int(ev.OriginCount))}, nil
}

// ResultFootprint computes the local result-buffer bytes a fetching atomic
// (Get_accumulate, Fetch_and_op, Compare_and_swap) writes at completion.
// It returns an empty footprint for operations without a result buffer.
func (m *Model) ResultFootprint(ev *trace.Event) (Footprint, error) {
	if ev.ResultCount <= 0 {
		return Footprint{Rank: ev.Rank}, nil
	}
	dm, err := m.Type(ev.Rank, ev.ResultType)
	if err != nil {
		return Footprint{}, err
	}
	return Footprint{Rank: ev.Rank, Intervals: dm.Tile(ev.ResultAddr, int(ev.ResultCount))}, nil
}

// AccessFootprint computes the bytes a local load/store touches.
func AccessFootprint(ev *trace.Event) Footprint {
	return Footprint{Rank: ev.Rank, Intervals: []memory.Interval{memory.Iv(ev.Addr, ev.Size)}}
}

// WindowAt returns the window (if any) whose local buffer at the given
// world rank contains the address interval.
func (m *Model) WindowAt(rank int32, iv memory.Interval) (*WinInfo, bool) {
	for _, wi := range m.Wins {
		if local, ok := wi.Locals[rank]; ok && local.Interval().Overlaps(iv) {
			return wi, true
		}
	}
	return nil, false
}
