package stream

import (
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// finishOnce runs the counter bug app through a checker and finalizes it.
func finishedChecker(t *testing.T) *Checker {
	t.Helper()
	bc, ok := findCase(t, "counter")
	if !ok {
		t.Fatal("counter app missing from registry")
	}
	sc := New(bc.Ranks, nil)
	pr := profiler.New(sc, profiler.FromNames(bc.RelevantBuffers))
	if err := mpi.Run(bc.Ranks, mpi.Options{Hook: pr}, bc.Buggy); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Finish(); err != nil {
		t.Fatal(err)
	}
	return sc
}

func findCase(t *testing.T, name string) (bc apps.BugCase, ok bool) {
	t.Helper()
	for _, c := range apps.AllCases() {
		if c.Name == name {
			return c, true
		}
	}
	return bc, false
}

func TestFinishIdempotent(t *testing.T) {
	sc := finishedChecker(t)
	rep1, err1 := sc.Finish()
	rep2, err2 := sc.Finish()
	if err1 != nil || err2 != nil {
		t.Fatalf("repeat Finish errored: %v / %v", err1, err2)
	}
	if rep1 != rep2 {
		t.Fatalf("repeat Finish returned a different report: %p vs %p", rep1, rep2)
	}
	if len(rep1.Violations) == 0 {
		t.Fatal("counter bug produced no violations; fixture is broken")
	}
}

func TestEmitAfterFinishIsDefined(t *testing.T) {
	sc := finishedChecker(t)
	rep, _ := sc.Finish()
	before := len(rep.Violations)
	// A straggler producer goroutine emits after finalization: the event
	// must be dropped, the report unchanged, and the misuse observable.
	sc.Emit(trace.Event{Kind: trace.KindBarrier, Rank: 0})
	sc.Emit(trace.Event{Kind: trace.KindBarrier, Rank: 1})
	if err := sc.Err(); !errors.Is(err, ErrEmitAfterFinish) {
		t.Fatalf("Err() = %v, want ErrEmitAfterFinish", err)
	}
	rep2, err := sc.Finish()
	if err != nil {
		t.Fatalf("Finish after late Emit: %v", err)
	}
	if rep2 != rep || len(rep2.Violations) != before {
		t.Fatal("late Emit mutated the finalized report")
	}
}

func TestErrNilOnCleanRun(t *testing.T) {
	sc := finishedChecker(t)
	if err := sc.Err(); err != nil {
		t.Fatalf("Err() on a clean finished run = %v, want nil", err)
	}
}
