package stream

import (
	"sync/atomic"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// runBoth executes a program under both the streaming checker and the
// batch pipeline and returns the two reports.
func runBoth(t *testing.T, ranks int, body func(p *mpi.Proc) error) (streamRep, batchRep *core.Report, slabs int) {
	t.Helper()
	// Streaming run.
	sc := New(ranks, nil)
	pr := profiler.New(sc, nil)
	if err := mpi.Run(ranks, mpi.Options{Hook: pr}, body); err != nil {
		t.Fatal(err)
	}
	var err error
	streamRep, err = sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Batch run.
	sink := trace.NewMemorySink()
	pr2 := profiler.New(sink, nil)
	if err := mpi.Run(ranks, mpi.Options{Hook: pr2}, body); err != nil {
		t.Fatal(err)
	}
	batchRep, err = core.Analyze(sink.Set())
	if err != nil {
		t.Fatal(err)
	}
	return streamRep, batchRep, sc.Slabs()
}

func sameViolations(t *testing.T, a, b *core.Report) {
	t.Helper()
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("stream found %d violations, batch %d:\nstream:\n%s\nbatch:\n%s",
			len(a.Violations), len(b.Violations), a, b)
	}
	seen := map[string]bool{}
	for _, v := range a.Violations {
		seen[violationKey(v)] = true
	}
	for _, v := range b.Violations {
		if !seen[violationKey(v)] {
			t.Errorf("batch violation missing from stream: %v", v)
		}
	}
}

func TestStreamMatchesBatchOnBugSuite(t *testing.T) {
	for _, bc := range apps.BugCases() {
		bc := bc
		ranks := bc.Ranks
		if ranks > 8 {
			ranks = 8
		}
		t.Run(bc.Name, func(t *testing.T) {
			s, b, _ := runBoth(t, ranks, bc.Buggy)
			sameViolations(t, s, b)
			if len(s.Errors()) == 0 {
				t.Error("stream missed the bug")
			}
			sf, bf, _ := runBoth(t, ranks, bc.Fixed)
			sameViolations(t, sf, bf)
			if len(sf.Violations) != 0 {
				t.Errorf("stream flagged the fixed variant:\n%s", sf)
			}
		})
	}
}

func TestStreamAnalyzesIncrementally(t *testing.T) {
	// A barrier-heavy clean program must produce multiple slabs, not one
	// big batch at Finish.
	_, _, slabs := runBoth(t, 4, func(p *mpi.Proc) error {
		buf := p.Alloc(64, "win")
		w := p.WinCreate(buf, 1, p.CommWorld())
		for i := 0; i < 6; i++ {
			w.Fence(mpi.AssertNone)
			if p.Rank() == 0 {
				src := p.Alloc(8, "src")
				w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			}
			w.Fence(mpi.AssertNone)
			p.Barrier(p.CommWorld())
		}
		w.Free()
		return nil
	})
	if slabs < 3 {
		t.Errorf("slabs = %d; expected incremental analysis", slabs)
	}
}

func TestStreamCallbackFiresEarly(t *testing.T) {
	var fired atomic.Int32
	sc := New(2, func(v *core.Violation) { fired.Add(1) })
	pr := profiler.New(sc, nil)
	err := mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		buf := p.Alloc(64, "win")
		w := p.WinCreate(buf, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			src.SetInt64(0, 1) // bug
		}
		w.Fence(mpi.AssertNone)
		p.Barrier(p.CommWorld())
		// Plenty of clean work after the bug, in later slabs.
		for i := 0; i < 3; i++ {
			p.Barrier(p.CommWorld())
		}
		firedMid := fired.Load()
		if p.Rank() == 0 && firedMid == 0 {
			// Note: cannot t.Error inside the rank body reliably; checked
			// after the run below too. This read documents intent.
			_ = firedMid
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired.Load() == 0 {
		t.Error("callback never fired")
	}
	rep, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Errorf("errors = %d:\n%s", len(rep.Errors()), rep)
	}
}

func TestStreamCoalescesUncleanBoundaries(t *testing.T) {
	// A lock epoch spanning a barrier makes the boundary unclean; the
	// conflict across it must still be found (coalesced slab).
	s, b, _ := runBoth(t, 2, func(p *mpi.Proc) error {
		buf := p.Alloc(64, "win")
		w := p.WinCreate(buf, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Lock(mpi.LockShared, 1)
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			// Epoch stays open across this rank's barrier entry.
			p.Barrier(p.CommWorld())
			w.Unlock(1)
		} else {
			buf.SetInt64(0, 9) // conflicts with the in-flight Put
			p.Barrier(p.CommWorld())
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	sameViolations(t, s, b)
	if len(s.Errors()) == 0 {
		t.Error("conflict across unclean boundary missed")
	}
}

func TestStreamPendingMessagesCoalesce(t *testing.T) {
	// A message sent before a barrier and received after it: boundary
	// unclean, slabs coalesce, matching stays intact.
	s, b, _ := runBoth(t, 2, func(p *mpi.Proc) error {
		buf := p.Alloc(8, "b")
		if p.Rank() == 0 {
			p.Send(p.CommWorld(), buf, 0, 1, mpi.Int64, 1, 3)
		}
		p.Barrier(p.CommWorld())
		if p.Rank() == 1 {
			p.Recv(p.CommWorld(), buf, 0, 1, mpi.Int64, 0, 3)
		}
		p.Barrier(p.CommWorld())
		return nil
	})
	sameViolations(t, s, b)
}

func TestStreamMemoryDropsAnalyzedSlabs(t *testing.T) {
	sc := New(2, nil)
	pr := profiler.New(sc, nil)
	err := mpi.Run(2, mpi.Options{Hook: pr}, func(p *mpi.Proc) error {
		for i := 0; i < 50; i++ {
			p.Barrier(p.CommWorld())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.mu.Lock()
	pending := len(sc.pending[0]) + len(sc.pending[1])
	sc.mu.Unlock()
	if pending > 4 {
		t.Errorf("pending events = %d; analyzed slabs were not discarded", pending)
	}
	if _, err := sc.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamWorkloadsClean(t *testing.T) {
	for _, wl := range apps.Workloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			sc := New(4, nil)
			pr := profiler.New(sc, profiler.FromNames(wl.RelevantBuffers))
			if err := mpi.Run(4, mpi.Options{Hook: pr}, wl.Body(0.25)); err != nil {
				t.Fatal(err)
			}
			rep, err := sc.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Errorf("stream false positive on %s:\n%s", wl.Name, rep)
			}
		})
	}
}

func TestStreamSubCommWindow(t *testing.T) {
	// A window on a sub-communicator stays live across world barriers; the
	// synthetic carryover fence must be injected only by member ranks.
	s, b, slabs := runBoth(t, 4, func(p *mpi.Proc) error {
		sub := p.CommSplit(p.CommWorld(), p.Rank()%2, p.Rank())
		buf := p.Alloc(64, "subwin")
		w := p.WinCreate(buf, 1, sub)
		w.Fence(mpi.AssertNone)
		p.Barrier(p.CommWorld()) // clean world boundary with the sub window live
		w.Fence(mpi.AssertNone)
		if sub.RankOf(p) == 0 {
			src := p.Alloc(8, "src")
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
		}
		w.Fence(mpi.AssertNone)
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	sameViolations(t, s, b)
	if len(s.Violations) != 0 {
		t.Errorf("clean sub-comm window flagged:\n%s", s)
	}
	if slabs < 2 {
		t.Errorf("slabs = %d; boundary with live sub-comm window should still be clean", slabs)
	}
}

func TestStreamObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sc := New(4, nil)
	sc.SetObs(reg)
	pr := profiler.NewObs(sc, nil, reg)
	err := mpi.Run(4, mpi.Options{Hook: pr, Obs: reg}, func(p *mpi.Proc) error {
		buf := p.Alloc(64, "win")
		w := p.WinCreate(buf, 1, p.CommWorld())
		for i := 0; i < 6; i++ {
			w.Fence(mpi.AssertNone)
			if p.Rank() == 0 {
				src := p.Alloc(8, "src")
				w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			}
			w.Fence(mpi.AssertNone)
			p.Barrier(p.CommWorld())
		}
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean program flagged:\n%s", rep)
	}
	snap := reg.Snapshot()

	if got := snap.CounterValue("mcchecker_stream_slabs_total"); got != int64(sc.Slabs()) {
		t.Errorf("slabs_total = %d, want %d (sc.Slabs())", got, sc.Slabs())
	}
	clean := snap.CounterValue("mcchecker_stream_boundaries_total", "result", "clean")
	unclean := snap.CounterValue("mcchecker_stream_boundaries_total", "result", "unclean")
	if clean < 3 {
		t.Errorf("clean boundaries = %d, want >= 3 (barrier-heavy program)", clean)
	}
	if unclean != 0 {
		t.Errorf("unclean boundaries = %d on a fence-synchronized program", unclean)
	}
	if got := snap.GaugeValue("mcchecker_stream_peak_buffered_events"); got <= 0 {
		t.Errorf("peak_buffered_events = %d, want > 0", got)
	}
	// The slab-size histogram saw one observation per slab, and the total
	// events distributed over slabs equal the analyzer's event count.
	var hist *obs.HistogramValue
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "mcchecker_stream_slab_events" {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil {
		t.Fatal("slab_events histogram missing")
	}
	if hist.Count != int64(sc.Slabs()) {
		t.Errorf("slab_events count = %d, want %d", hist.Count, sc.Slabs())
	}
	if hist.Sum != int64(rep.EventsAnalyzed) {
		t.Errorf("slab_events sum = %d, want %d (events analyzed)", hist.Sum, rep.EventsAnalyzed)
	}
	// The streaming checker runs the analyzer per slab, so phase spans
	// accumulate across slabs.
	if sp := snap.Span(core.PhaseSpanName, "phase", "match"); sp.Count != int64(sc.Slabs()) {
		t.Errorf("match span count = %d, want %d", sp.Count, sc.Slabs())
	}
}

func TestStreamObsCountsCoalescedBoundaries(t *testing.T) {
	reg := obs.NewRegistry()
	sc := New(2, nil)
	sc.SetObs(reg)
	pr := profiler.NewObs(sc, nil, reg)
	err := mpi.Run(2, mpi.Options{Hook: pr, Obs: reg}, func(p *mpi.Proc) error {
		buf := p.Alloc(64, "win")
		w := p.WinCreate(buf, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Lock(mpi.LockShared, 1)
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			p.Barrier(p.CommWorld()) // epoch open across the barrier: unclean
			w.Unlock(1)
		} else {
			p.Barrier(p.CommWorld())
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Finish(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	unclean := snap.CounterValue("mcchecker_stream_boundaries_total", "result", "unclean")
	coalesced := snap.CounterValue("mcchecker_stream_coalesced_regions_total")
	if unclean == 0 {
		t.Error("open lock epoch across a barrier must count an unclean boundary")
	}
	if coalesced != unclean {
		t.Errorf("coalesced = %d, unclean = %d; every unclean boundary coalesces", coalesced, unclean)
	}
}

func TestStreamRankOutOfRange(t *testing.T) {
	sc := New(2, nil)
	sc.Emit(trace.Event{Kind: trace.KindBarrier, Rank: 5})
	if _, err := sc.Finish(); err == nil {
		t.Error("expected rank-out-of-range error")
	}
}
