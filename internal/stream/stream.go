// Package stream implements the online analysis mode the paper proposes as
// future work (§VII-B: "While MC-Checker analyzes the traces offline, we
// can extend it to perform online analysis by leveraging streaming
// processing algorithms").
//
// The Checker is a trace.Sink: the profiler feeds it events as they are
// emitted, and completed concurrent regions are analyzed as soon as the
// global synchronization closing them has been executed by every rank —
// long before the program finishes. Analyzed events are then discarded, so
// memory is bounded by the largest region rather than the whole execution.
//
// # Slab boundaries
//
// A global synchronization (a barrier-like collective spanning all ranks,
// or a fence/create/free on a world window) is a *clean* boundary when no
// cross-boundary state is pending: no open passive-target or PSCW epoch,
// no one-sided operation issued since the last fence of its window, no
// unreceived message, and no unwaited Irecv. At a clean boundary the
// accumulated slab is analyzed with the ordinary offline pipeline and its
// violations are reported through the callback; at an unclean boundary the
// slab simply keeps growing (coalescing regions), preserving exact
// equivalence with offline analysis. Definition events (communicators,
// datatypes, windows) and a synthetic opening fence per live window are
// re-injected at the start of each subsequent slab so that the slab is
// self-contained.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ErrEmitAfterFinish is the defined misuse error recorded when Emit is
// called on an already-finished checker. Under the serving daemon a
// late-emitting producer goroutine must not corrupt a finalized report;
// the stray event is dropped and the misuse is observable via Err.
var ErrEmitAfterFinish = errors.New("stream: Emit after Finish (event dropped)")

// Checker consumes runtime events and analyzes completed regions online.
type Checker struct {
	mu    sync.Mutex
	ranks int

	onViolation func(v *core.Violation) // optional, called as slabs complete

	// Per-rank pending (not yet analyzed) events.
	pending [][]trace.Event
	// Per-rank positions (indexes into pending) of global sync events.
	globalPos [][]int

	// Definition events seen so far, per rank, in original order.
	defs [][]trace.Event

	// Cleanliness state.
	lockDepth    []int // open Win_lock epochs per rank
	lockAllDepth []int
	startDepth   []int            // open Win_start epochs per rank
	postDepth    []int            // open Win_post exposure epochs per rank
	fenceOps     map[[2]int32]int // (rank, win) → ops issued since last fence
	fenceDirty   int              // number of nonzero fenceOps entries
	msgDelta     map[chanKey]int  // sends minus recvs per channel
	msgDirty     int              // number of nonzero msgDelta entries
	irecvOpen    []int            // posted Irecvs not yet waited, per rank
	reqKind      map[reqID]trace.Kind

	// Window registry for boundary classification and fence synthesis.
	winComm     map[int32]int32   // win → comm id
	commSize    map[int32]int     // comm id → member count
	commMembers map[int32][]int32 // comm id → world ranks (nil for world)
	fenceSeen   map[int32]bool    // win → a fence has been executed
	freed       map[int32]bool    // win → freed

	slabsAnalyzed int
	report        *core.Report
	vindex        map[string]*core.Violation
	err           error
	tolerant      bool     // degrade failing slabs instead of aborting
	notes         []string // accumulated degradation diagnostics

	// Lifecycle guards. finished latches on the first Finish call:
	// Finish becomes idempotent (repeat calls return the cached result)
	// and later Emits drop their event, recording misuse instead of
	// mutating a report the caller may already hold.
	finished  bool
	finalRep  *core.Report
	finalErr  error
	misuse    error // ErrEmitAfterFinish once a late Emit arrives
	lateEmits int

	// Observability. buffered/peakBuffered track the events held across
	// all ranks — the memory-boundedness claim of online analysis, made
	// checkable. The metric handles are nil without a registry.
	opts          core.Options // analysis options for slabs (Obs rides here)
	buffered      int          // events currently pending across ranks
	peakBuffered  int
	mSlabs        *obs.Counter
	mSlabEvents   *obs.Histogram
	mBoundClean   *obs.Counter
	mBoundUnclean *obs.Counter
	mCoalesced    *obs.Counter
	mPeakBuffered *obs.Gauge
}

type chanKey struct {
	comm, src, dst, tag int32
}

type reqID struct {
	rank, req int32
}

var _ trace.Sink = (*Checker)(nil)

// New returns a streaming checker for a world of the given size.
// onViolation (optional) fires once per new distinct violation, as soon as
// the slab containing it completes.
func New(ranks int, onViolation func(v *core.Violation)) *Checker {
	c := &Checker{
		ranks:        ranks,
		onViolation:  onViolation,
		pending:      make([][]trace.Event, ranks),
		globalPos:    make([][]int, ranks),
		defs:         make([][]trace.Event, ranks),
		lockDepth:    make([]int, ranks),
		lockAllDepth: make([]int, ranks),
		startDepth:   make([]int, ranks),
		postDepth:    make([]int, ranks),
		fenceOps:     map[[2]int32]int{},
		msgDelta:     map[chanKey]int{},
		irecvOpen:    make([]int, ranks),
		reqKind:      map[reqID]trace.Kind{},
		winComm:      map[int32]int32{},
		commSize:     map[int32]int{0: ranks},
		commMembers:  map[int32][]int32{},
		fenceSeen:    map[int32]bool{},
		freed:        map[int32]bool{},
		report:       &core.Report{},
		vindex:       map[string]*core.Violation{},
		opts:         core.DefaultOptions(),
	}
	return c
}

// SetObs attaches an observability registry: slab sizes, clean vs unclean
// boundary decisions, coalesced regions, and the peak number of buffered
// events all become measurable, and the per-slab analysis records its
// phase spans into the same registry. Call before the first Emit.
func (c *Checker) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opts.Obs = reg
	c.mSlabs = reg.Counter("mcchecker_stream_slabs_total")
	c.mSlabEvents = reg.Histogram("mcchecker_stream_slab_events")
	c.mBoundClean = reg.Counter("mcchecker_stream_boundaries_total", "result", "clean")
	c.mBoundUnclean = reg.Counter("mcchecker_stream_boundaries_total", "result", "unclean")
	c.mCoalesced = reg.Counter("mcchecker_stream_coalesced_regions_total")
	c.mPeakBuffered = reg.Gauge("mcchecker_stream_peak_buffered_events")
}

// SetTolerant switches the checker into fault-tolerant mode: a slab that
// fails strict analysis (for example because a crashed rank left
// unmatched communication structure behind) is salvaged with
// core.AnalyzeDegraded instead of aborting the whole online run, and the
// final report's Degraded field carries the loss diagnostics. Call
// before the first Emit.
func (c *Checker) SetTolerant(v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tolerant = v
}

// SetEngine selects the cross-process detector implementation used for
// slab analysis (default: the shadow engine). Call before the first Emit.
func (c *Checker) SetEngine(e core.Engine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opts.Engine = e
}

// Emit implements trace.Sink. It is safe for concurrent use by the rank
// goroutines; slab analysis runs inline in the emitting goroutine that
// completes a boundary (the online analysis cost the paper's future-work
// section anticipates).
func (c *Checker) Emit(ev trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		c.misuse = ErrEmitAfterFinish
		c.lateEmits++
		return
	}
	if c.err != nil {
		return
	}
	if int(ev.Rank) >= c.ranks {
		c.err = fmt.Errorf("stream: event from rank %d in a world of %d", ev.Rank, c.ranks)
		return
	}
	c.track(&ev)
	r := ev.Rank
	c.pending[r] = append(c.pending[r], ev)
	c.buffered++
	if c.buffered > c.peakBuffered {
		c.peakBuffered = c.buffered
	}
	if c.isGlobalSync(&ev) {
		c.globalPos[r] = append(c.globalPos[r], len(c.pending[r])-1)
		c.maybeAnalyze()
	}
}

// track updates registries and cleanliness counters.
func (c *Checker) track(ev *trace.Event) {
	r := ev.Rank
	switch ev.Kind {
	case trace.KindCommCreate:
		c.commSize[ev.Comm] = len(ev.Members)
		c.commMembers[ev.Comm] = append([]int32(nil), ev.Members...)
		c.defs[r] = append(c.defs[r], *ev)
	case trace.KindTypeCreate:
		c.defs[r] = append(c.defs[r], *ev)
	case trace.KindWinCreate:
		c.winComm[ev.Win] = ev.Comm
		c.defs[r] = append(c.defs[r], *ev)
	case trace.KindWinFree:
		c.freed[ev.Win] = true
	case trace.KindWinFence:
		key := [2]int32{r, ev.Win}
		if c.fenceOps[key] > 0 {
			c.fenceDirty--
		}
		c.fenceOps[key] = 0
		c.fenceSeen[ev.Win] = true
	case trace.KindWinLock:
		c.lockDepth[r]++
	case trace.KindWinUnlock:
		c.lockDepth[r]--
	case trace.KindWinLockAll:
		c.lockAllDepth[r]++
	case trace.KindWinUnlockAll:
		c.lockAllDepth[r]--
	case trace.KindWinStart:
		c.startDepth[r]++
	case trace.KindWinComplete:
		c.startDepth[r]--
	case trace.KindWinPost:
		c.postDepth[r]++
	case trace.KindWinWait:
		c.postDepth[r]--
	case trace.KindSend, trace.KindIsend:
		if ev.Kind == trace.KindIsend {
			c.reqKind[reqID{r, ev.Req}] = trace.KindIsend
		}
		c.bumpMsg(chanKey{ev.Comm, r, ev.Peer, ev.Tag}, +1)
	case trace.KindRecv:
		c.bumpMsg(chanKey{ev.Comm, ev.Peer, r, ev.Tag}, -1)
	case trace.KindIrecv:
		c.reqKind[reqID{r, ev.Req}] = trace.KindIrecv
		c.irecvOpen[r]++
	case trace.KindWaitReq:
		if c.reqKind[reqID{r, ev.Req}] == trace.KindIrecv {
			c.irecvOpen[r]--
			c.bumpMsg(chanKey{ev.Comm, ev.Peer, r, ev.Tag}, -1)
		}
	case trace.KindPut, trace.KindGet, trace.KindAccumulate,
		trace.KindGetAccumulate, trace.KindFetchOp, trace.KindCompareSwap:
		// Count only fence-mode operations: ops under an open lock,
		// lock_all, or start epoch complete at that epoch's close.
		if c.lockDepth[ev.Rank] == 0 && c.lockAllDepth[ev.Rank] == 0 && c.startDepth[ev.Rank] == 0 {
			key := [2]int32{r, ev.Win}
			if c.fenceOps[key] == 0 {
				c.fenceDirty++
			}
			c.fenceOps[key]++
		}
	}
}

// Note: the send side of a message is logged with the destination rank
// relative to the communicator; translating to world ranks would require
// the registry, but for balance counting a consistent keying suffices as
// long as both sides agree. The send uses (comm, srcWorld, dstRel) and the
// receive (comm, srcRel, dstWorld); for the world communicator these
// coincide. For sub-communicators the two sides may use different keys,
// making the balance conservatively nonzero (unclean) — correctness is
// preserved, granularity suffers only for sub-communicator p2p traffic.
func (c *Checker) bumpMsg(key chanKey, delta int) {
	old := c.msgDelta[key]
	nv := old + delta
	c.msgDelta[key] = nv
	if old == 0 && nv != 0 {
		c.msgDirty++
	}
	if old != 0 && nv == 0 {
		c.msgDirty--
	}
}

// isGlobalSync reports whether ev is a barrier-like synchronization
// spanning all ranks (a region delimiter).
func (c *Checker) isGlobalSync(ev *trace.Event) bool {
	switch ev.Kind {
	case trace.KindBarrier, trace.KindAllreduce, trace.KindAllgather, trace.KindAlltoall:
		return c.commSize[ev.Comm] == c.ranks
	case trace.KindWinFence, trace.KindWinCreate, trace.KindWinFree:
		comm, ok := c.winComm[ev.Win]
		return ok && c.commSize[comm] == c.ranks
	}
	return false
}

// clean reports whether the current boundary carries no cross-slab state.
func (c *Checker) clean() bool {
	for r := 0; r < c.ranks; r++ {
		if c.lockDepth[r] != 0 || c.lockAllDepth[r] != 0 ||
			c.startDepth[r] != 0 || c.postDepth[r] != 0 || c.irecvOpen[r] != 0 {
			return false
		}
	}
	return c.fenceDirty == 0 && c.msgDirty == 0
}

// maybeAnalyze checks whether every rank has executed the next global
// sync; if so and the boundary is clean, the slab is analyzed and dropped.
func (c *Checker) maybeAnalyze() {
	for {
		ready := true
		for r := 0; r < c.ranks; r++ {
			if len(c.globalPos[r]) == 0 {
				ready = false
				break
			}
		}
		if !ready {
			return
		}
		// All ranks have reached a boundary. The boundary is clean only if
		// the *trailing* state is clean — but ranks may have run ahead past
		// the boundary, so cleanliness must be evaluated against the state
		// at the boundary. Running ahead is possible only for events after
		// the global sync, which by definition happened after every rank
		// entered it; tracking state is cumulative, so we conservatively
		// require current cleanliness. If unclean, coalesce: drop this
		// boundary and retry at the next one.
		if !c.clean() {
			c.mBoundUnclean.Inc()
			c.mCoalesced.Inc()
			for r := 0; r < c.ranks; r++ {
				c.globalPos[r] = c.globalPos[r][1:]
			}
			continue
		}
		c.mBoundClean.Inc()
		if err := c.analyzeSlab(); err != nil {
			c.err = err
			return
		}
	}
}

// analyzeSlab builds a self-contained trace set from the events up to and
// including each rank's next boundary, analyzes it, merges violations, and
// discards the events (keeping the boundary event as the next slab's
// opening synchronization).
func (c *Checker) analyzeSlab() error {
	set := trace.NewSet(c.ranks)
	for r := 0; r < c.ranks; r++ {
		tr := set.Traces[r]
		appendEv := func(ev trace.Event) {
			ev.Rank = int32(r)
			ev.Seq = int64(len(tr.Events))
			tr.Events = append(tr.Events, ev)
		}
		if c.slabsAnalyzed > 0 {
			// Re-inject definitions and a synthetic opening fence per live
			// fenced window.
			for _, d := range c.defs[r] {
				if d.Kind == trace.KindWinCreate && c.freed[d.Win] {
					continue
				}
				appendEv(d)
			}
			for _, win := range c.liveFencedWins() {
				if !c.rankInWinComm(r, win) {
					continue
				}
				appendEv(trace.Event{
					Kind: trace.KindWinFence, Win: win, Comm: c.winComm[win],
					File: "<stream-carryover>",
				})
			}
		}
		cut := c.globalPos[r][0] + 1
		for _, ev := range c.pending[r][:cut] {
			appendEv(ev)
		}
		// Keep everything after the boundary; the boundary event itself
		// was consumed (its sync effect for the next slab is re-created by
		// the synthetic fence / definitions, and ordering across the
		// boundary is implied by slab sequencing).
		c.pending[r] = append([]trace.Event(nil), c.pending[r][cut:]...)
		rebased := c.globalPos[r][1:]
		c.globalPos[r] = make([]int, len(rebased))
		for i, p := range rebased {
			c.globalPos[r][i] = p - cut
		}
	}
	c.slabsAnalyzed++
	c.recountBuffered()
	c.mSlabs.Inc()
	c.mSlabEvents.Observe(int64(set.TotalEvents()))
	c.mPeakBuffered.SetMax(int64(c.peakBuffered))

	rep, err := c.analyzeSet(set, fmt.Sprintf("slab %d", c.slabsAnalyzed))
	if err != nil {
		return fmt.Errorf("stream: slab %d: %w", c.slabsAnalyzed, err)
	}
	c.merge(rep)
	return nil
}

// analyzeSet runs one slab's trace set through the pipeline. In tolerant
// mode an analysis failure degrades — the longest clean prefix of the
// slab is analyzed and the loss recorded in c.notes — instead of
// erroring.
func (c *Checker) analyzeSet(set *trace.Set, label string) (*core.Report, error) {
	if !c.tolerant {
		return core.AnalyzeWith(set, c.opts)
	}
	rep, err := core.AnalyzeDegraded(set, c.opts, nil)
	if err != nil {
		return nil, err
	}
	for _, n := range rep.Degraded {
		c.notes = append(c.notes, label+": "+n)
	}
	return rep, nil
}

// recountBuffered refreshes the buffered-event tally after a slab trimmed
// the pending queues.
func (c *Checker) recountBuffered() {
	n := 0
	for r := 0; r < c.ranks; r++ {
		n += len(c.pending[r])
	}
	c.buffered = n
}

// liveFencedWins lists windows that have seen a fence and are not freed,
// deterministically ordered.
func (c *Checker) liveFencedWins() []int32 {
	var wins []int32
	for win := range c.fenceSeen {
		if !c.freed[win] {
			wins = append(wins, win)
		}
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	return wins
}

// rankInWinComm reports whether world rank r belongs to the communicator
// win was created over, so only member ranks inject its synthetic fence.
func (c *Checker) rankInWinComm(r int, win int32) bool {
	comm := c.winComm[win]
	members, ok := c.commMembers[comm]
	if !ok {
		return true // world communicator: every rank is a member
	}
	for _, m := range members {
		if int(m) == r {
			return true
		}
	}
	return false
}

// merge folds a slab report into the cumulative one, deduplicating across
// slabs and firing the callback for new violations.
func (c *Checker) merge(rep *core.Report) {
	c.report.EventsAnalyzed += rep.EventsAnalyzed
	c.report.Regions += rep.Regions
	c.report.EpochsChecked += rep.EpochsChecked
	for _, v := range rep.Violations {
		key := violationKey(v)
		if prev, ok := c.vindex[key]; ok {
			prev.Count += v.Count
			continue
		}
		c.vindex[key] = v
		c.report.Violations = append(c.report.Violations, v)
		if c.onViolation != nil {
			c.onViolation(v)
		}
	}
}

func violationKey(v *core.Violation) string {
	a := fmt.Sprintf("%s@%s", v.A.Kind, v.A.Loc())
	b := fmt.Sprintf("%s@%s", v.B.Kind, v.B.Loc())
	if b < a {
		a, b = b, a
	}
	return a + "|" + b + "|" + v.Rule
}

// Finish analyzes the remaining tail and returns the cumulative report.
// It is idempotent: repeat calls return the first call's report and error
// unchanged, so racing shutdown paths (drain, watchdog, signal handler)
// can all safely finalize the same checker.
func (c *Checker) Finish() (*core.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return c.finalRep, c.finalErr
	}
	rep, err := c.finishLocked()
	c.finished = true
	c.finalRep, c.finalErr = rep, err
	return rep, err
}

// Err reports sticky failure and misuse state: the first slab-analysis
// error, or ErrEmitAfterFinish when events arrived after finalization.
// A nil result means every event was accepted and analyzed (or is still
// pending analysis).
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.misuse != nil {
		return fmt.Errorf("%w (%d dropped)", c.misuse, c.lateEmits)
	}
	return nil
}

// finishLocked is the single-shot body of Finish, running under c.mu.
func (c *Checker) finishLocked() (*core.Report, error) {
	if c.err != nil {
		return nil, c.err
	}
	// Analyze whatever remains as one final slab (boundary = end of trace).
	remaining := 0
	for r := 0; r < c.ranks; r++ {
		remaining += len(c.pending[r])
	}
	if remaining > 0 {
		set := trace.NewSet(c.ranks)
		for r := 0; r < c.ranks; r++ {
			tr := set.Traces[r]
			appendEv := func(ev trace.Event) {
				ev.Rank = int32(r)
				ev.Seq = int64(len(tr.Events))
				tr.Events = append(tr.Events, ev)
			}
			if c.slabsAnalyzed > 0 {
				for _, d := range c.defs[r] {
					if d.Kind == trace.KindWinCreate && c.freed[d.Win] {
						continue
					}
					appendEv(d)
				}
				for _, win := range c.liveFencedWins() {
					if !c.rankInWinComm(r, win) {
						continue
					}
					appendEv(trace.Event{
						Kind: trace.KindWinFence, Win: win, Comm: c.winComm[win],
						File: "<stream-carryover>",
					})
				}
			}
			for _, ev := range c.pending[r] {
				appendEv(ev)
			}
			c.pending[r] = nil
			c.globalPos[r] = nil
		}
		c.slabsAnalyzed++
		c.buffered = 0
		c.mSlabs.Inc()
		c.mSlabEvents.Observe(int64(set.TotalEvents()))
		rep, err := c.analyzeSet(set, "final slab")
		if err != nil {
			return nil, fmt.Errorf("stream: final slab: %w", err)
		}
		c.merge(rep)
	}
	c.mPeakBuffered.SetMax(int64(c.peakBuffered))
	c.report.Sort()
	c.report.Degraded = append(c.report.Degraded, c.notes...)
	return c.report, nil
}

// Slabs returns the number of slabs analyzed so far (diagnostic).
func (c *Checker) Slabs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slabsAnalyzed
}
