package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Submission is the body of POST /jobs: one trace set to analyze, given
// either as a server-local directory of trace.<rank>.bin files or as
// inline per-rank uploads of the same binary stream format (base64 on
// the JSON wire). Exactly one of the two must be set.
type Submission struct {
	TraceDir string       `json:"trace_dir,omitempty"`
	Traces   []RankUpload `json:"traces,omitempty"`
	// IntraOnly restricts detection to within-epoch conflicts (the
	// SyncChecker baseline).
	IntraOnly bool `json:"intra_only,omitempty"`
	// Strict disables the salvage fallback: a damaged upload fails the
	// job instead of degrading it.
	Strict bool `json:"strict,omitempty"`
}

// RankUpload is one rank's binary trace stream.
type RankUpload struct {
	Rank int32  `json:"rank"`
	Data []byte `json:"data"`
}

// Wire limits. The byte cap is enforced by the HTTP layer before decode;
// the rank cap bounds what a hostile rank field can make the set
// allocate (trace sets are dense in rank).
const (
	// MaxSubmissionBytes caps a submission body.
	MaxSubmissionBytes = 64 << 20
	// MaxUploadRanks caps both the upload count and the rank IDs they
	// may claim.
	MaxUploadRanks = 1024
)

// ParseSubmission decodes and validates a submission body. Unknown
// fields, trailing data, and structurally hostile inputs (duplicate or
// out-of-range ranks, empty payloads) are rejected here, before any
// job is admitted.
func ParseSubmission(data []byte) (*Submission, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sub Submission
	if err := dec.Decode(&sub); err != nil {
		return nil, fmt.Errorf("serve: bad submission: %w", err)
	}
	if dec.More() {
		return nil, errors.New("serve: bad submission: trailing data after JSON object")
	}
	if err := sub.validate(); err != nil {
		return nil, err
	}
	return &sub, nil
}

func (sub *Submission) validate() error {
	if (sub.TraceDir == "") == (len(sub.Traces) == 0) {
		return errors.New("serve: submission must carry exactly one of trace_dir or traces")
	}
	if len(sub.Traces) > MaxUploadRanks {
		return fmt.Errorf("serve: %d rank uploads exceed the limit of %d", len(sub.Traces), MaxUploadRanks)
	}
	seen := make(map[int32]bool, len(sub.Traces))
	for i := range sub.Traces {
		u := &sub.Traces[i]
		if u.Rank < 0 || u.Rank >= MaxUploadRanks {
			return fmt.Errorf("serve: upload %d: rank %d out of range [0,%d)", i, u.Rank, MaxUploadRanks)
		}
		if seen[u.Rank] {
			return fmt.Errorf("serve: duplicate upload for rank %d", u.Rank)
		}
		seen[u.Rank] = true
		if len(u.Data) == 0 {
			return fmt.Errorf("serve: upload for rank %d is empty", u.Rank)
		}
	}
	return nil
}

// load materializes the submission's trace set under the job's watchdog
// ctx: strict decode first, then — unless Strict — the salvage fallback
// for damaged payloads, with one diagnostic note per degradation,
// mirroring trace.ReadDirSalvage.
func (sub *Submission) load(ctx context.Context, reg *obs.Registry) (*trace.Set, []string, error) {
	if sub.TraceDir != "" {
		set, err := trace.ReadDirContext(ctx, sub.TraceDir)
		if err == nil {
			return set, nil, nil
		}
		if sub.Strict || ctx.Err() != nil {
			return nil, nil, err
		}
		set, notes, serr := trace.ReadDirSalvageContext(ctx, sub.TraceDir, reg)
		if serr != nil {
			return nil, nil, serr
		}
		return set, append([]string{fmt.Sprintf("strict read failed: %v", err)}, notes...), nil
	}
	return sub.loadInline(ctx, reg)
}

// loadInline assembles a set from the uploaded rank streams, applying
// the same per-file salvage policy and degradation notes as the
// directory path.
func (sub *Submission) loadInline(ctx context.Context, reg *obs.Registry) (*trace.Set, []string, error) {
	var notes []string
	byRank := make(map[int32]*trace.Trace, len(sub.Traces))
	maxRank := int32(-1)
	for i := range sub.Traces {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("serve: upload decode canceled: %w", err)
		}
		u := &sub.Traces[i]
		if u.Rank > maxRank {
			maxRank = u.Rank
		}
		t, err := trace.ReadTrace(bytes.NewReader(u.Data))
		if err == nil && t.Rank == u.Rank {
			byRank[u.Rank] = t
			continue
		}
		if err == nil {
			// Decoded fine but the header disagrees with the declared rank:
			// in salvage mode the upload is dropped with a note, exactly
			// like a mis-named file on disk.
			if sub.Strict {
				return nil, nil, fmt.Errorf("serve: rank %d upload: header claims rank %d", u.Rank, t.Rank)
			}
			notes = append(notes, fmt.Sprintf("rank %d upload: header claims rank %d; upload ignored", u.Rank, t.Rank))
			continue
		}
		if sub.Strict {
			return nil, nil, fmt.Errorf("serve: rank %d upload: %w", u.Rank, err)
		}
		st, res, serr := trace.ReadTraceSalvage(bytes.NewReader(u.Data))
		if serr != nil {
			notes = append(notes, fmt.Sprintf("rank %d upload: lost entirely: %v", u.Rank, serr))
			continue
		}
		if st.Rank != u.Rank {
			notes = append(notes, fmt.Sprintf("rank %d upload: header claims rank %d; upload ignored", u.Rank, st.Rank))
			continue
		}
		reg.Counter("mcchecker_trace_salvaged_events_total").Add(int64(res.Events))
		if !res.Complete {
			reg.Counter("mcchecker_trace_truncated_streams_total").Inc()
			notes = append(notes, fmt.Sprintf("rank %d upload: truncated, salvaged %d-event prefix (%s)",
				u.Rank, res.Events, res.Reason))
		}
		byRank[u.Rank] = st
	}
	if len(byRank) == 0 {
		return nil, nil, fmt.Errorf("serve: no usable rank uploads (%d damaged)", len(sub.Traces))
	}
	set := trace.NewSet(int(maxRank + 1))
	for r := int32(0); r <= maxRank; r++ {
		if t := byRank[r]; t != nil {
			set.Traces[r] = t
		} else {
			notes = append(notes, fmt.Sprintf("rank %d: no events recovered", r))
		}
	}
	if err := set.Validate(); err != nil {
		return nil, notes, fmt.Errorf("serve: uploaded set invalid: %w", err)
	}
	return set, notes, nil
}
