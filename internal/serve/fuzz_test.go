package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/trace"
)

// hostileHintStream builds a codec-v2 header whose event-count hint
// claims 2^62 events: the decoders must clamp the preallocation rather
// than trust the wire.
func hostileHintStream(tail []byte) []byte {
	b := []byte("MCCT")
	b = append(b, 2)                   // codec version 2
	b = binary.AppendVarint(b, 0)      // rank 0
	b = binary.AppendUvarint(b, 1<<62) // hostile count hint
	return append(b, tail...)
}

func fuzzSeed(f *testing.F, sub *Submission) {
	f.Helper()
	data, err := json.Marshal(sub)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
}

// FuzzParseSubmission drives the job-submission decode path — JSON shape
// validation plus the inline trace decode with its salvage fallback —
// with hostile bytes. The invariant is narrow and absolute: no input may
// panic or hang the decoder, however malformed the JSON or however
// hostile the embedded codec stream's claims.
func FuzzParseSubmission(f *testing.F) {
	clean := &trace.Trace{Rank: 0}
	clean.Events = append(clean.Events, trace.Event{Kind: trace.KindBarrier})
	cleanData, err := trace.EncodeTrace(clean)
	if err != nil {
		f.Fatal(err)
	}
	fuzzSeed(f, &Submission{Traces: []RankUpload{{Rank: 0, Data: cleanData}}})
	fuzzSeed(f, &Submission{Traces: []RankUpload{{Rank: 0, Data: cleanData[:len(cleanData)/2]}}})
	fuzzSeed(f, &Submission{Traces: []RankUpload{{Rank: 0, Data: hostileHintStream(nil)}}})
	fuzzSeed(f, &Submission{Traces: []RankUpload{{Rank: 0, Data: hostileHintStream(cleanData[5:])}}})
	fuzzSeed(f, &Submission{TraceDir: "relative/dir", Strict: true})
	f.Add([]byte(`{`))
	f.Add([]byte(`{"traces":[{"rank":9e9,"data":"AA=="}]}`))
	f.Add([]byte(`{"traces":null,"trace_dir":""}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // the HTTP layer caps bodies long before this
		}
		sub, err := ParseSubmission(data)
		if err != nil {
			return
		}
		if sub.TraceDir != "" {
			return // directory jobs touch the filesystem; out of scope here
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		set, notes, err := sub.loadInline(ctx, nil)
		if err != nil {
			return
		}
		if set == nil || set.Ranks() == 0 {
			t.Fatalf("loadInline returned no error but an empty set (notes %v)", notes)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("loadInline returned an invalid set: %v", err)
		}
	})
}
