package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postJob(t *testing.T, url string, sub *Submission) *http.Response {
	t.Helper()
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) jobResponse {
	t.Helper()
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

func TestHTTPSubmitPollAndReport(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts.URL, &Submission{Traces: uploads(t, conflictSet())})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	jr := decodeJob(t, resp)
	if jr.ID == "" {
		t.Fatal("no job id in submit response")
	}

	resp2, err := http.Get(ts.URL + "/jobs/" + jr.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	done := decodeJob(t, resp2)
	if done.Status != StatusDone {
		t.Fatalf("polled status = %s (error %q)", done.Status, done.Error)
	}
	if done.Violations != 1 || len(done.Report) == 0 {
		t.Fatalf("violations = %d, report bytes = %d", done.Violations, len(done.Report))
	}
	var rep struct {
		Violations []struct {
			Rule string `json:"rule"`
		} `json:"violations"`
	}
	if err := json.Unmarshal(done.Report, &rep); err != nil {
		t.Fatalf("embedded report is not valid JSON: %v", err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("embedded report has %d violations", len(rep.Violations))
	}

	listResp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Jobs []jobResponse `json:"jobs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != jr.ID {
		t.Fatalf("job list = %+v", list.Jobs)
	}

	if resp, err := http.Get(ts.URL + "/jobs/job-999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v status %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

func TestHTTPBadSubmissionIs400(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(`{"bogus":`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad submission status = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPShedsWith429 pins the back-pressure contract: past the queue
// budget the daemon answers 429 with a Retry-After hint instead of
// buffering, and a draining daemon answers 503.
func TestHTTPShedsWith429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueBudget: 1})
	release := make(chan struct{})
	s.testHook = func(ctx context.Context, _ *Submission) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub := &Submission{Traces: uploads(t, conflictSet())}
	resp := postJob(t, ts.URL, sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}
	resp = postJob(t, ts.URL, sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	s.BeginDrain()
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v status %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp = postJob(t, ts.URL, sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining status = %d, want 503", resp.StatusCode)
	}
}
