// Package serve implements the mcchecker analysis daemon: a long-running
// HTTP/JSON service that accepts trace sets (inline uploads or
// server-local directories), runs the MC-Checker offline pipeline on a
// bounded worker pool, and exposes per-job results, health, and metrics.
//
// The daemon is built for hostile operating conditions rather than for
// throughput alone:
//
//   - admission control: a global queue budget bounds the jobs admitted
//     but not yet finished; past it, submissions are shed immediately
//     (HTTP 429 with Retry-After) instead of growing memory without bound;
//   - watchdog deadlines: each attempt runs under a per-job timeout whose
//     context is threaded into core.Analyze and the trace readers, so a
//     stuck or oversized analysis is reclaimed cooperatively;
//   - panic isolation: a panicking analysis is recovered into a degraded
//     report carrying the panic value and stack — one poisoned job never
//     takes the process down;
//   - retry and quarantine: failed attempts are retried with exponential
//     backoff; a job still failing after MaxAttempts is quarantined with
//     its final error rather than retried forever;
//   - salvage: truncated or corrupt uploads fall back to the trace
//     layer's salvage decoding and degraded analysis, mirroring
//     `mcchecker analyze`;
//   - graceful drain: BeginDrain stops admission while in-flight jobs run
//     to completion, so SIGTERM loses no accepted work.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a sensible default.
type Config struct {
	// Workers is the analysis worker pool width (default GOMAXPROCS).
	Workers int
	// QueueBudget bounds the jobs admitted but not yet terminal; further
	// submissions are shed with ErrOverloaded (default 4x Workers).
	QueueBudget int
	// JobTimeout is the per-attempt watchdog deadline (default 30s).
	JobTimeout time.Duration
	// MaxAttempts is how many attempts a job gets before quarantine
	// (default 3).
	MaxAttempts int
	// RetryBackoff is the base retry delay, doubled per attempt
	// (default 100ms).
	RetryBackoff time.Duration
	// AnalyzeWorkers is core.Options.Workers for each job (default 1:
	// concurrency comes from the job pool, not from within one job).
	AnalyzeWorkers int
	// Engine is core.Options.Engine for each job; the zero value is the
	// shadow engine.
	Engine core.Engine
	// Obs receives the serve metric families and the per-job analysis
	// metrics. Nil disables all accounting.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueBudget <= 0 {
		c.QueueBudget = 4 * c.Workers
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.AnalyzeWorkers <= 0 {
		c.AnalyzeWorkers = 1
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued      Status = "queued"
	StatusRunning     Status = "running"
	StatusRetryWait   Status = "retry-wait"
	StatusDone        Status = "done"
	StatusFailed      Status = "failed"
	StatusQuarantined Status = "quarantined"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusQuarantined
}

// Job is a client-visible snapshot of one submitted analysis.
type Job struct {
	ID       string
	Status   Status
	Attempts int
	// Degraded is true when the finished report carries degradation
	// notes (salvaged upload, recovered panic, partial analysis).
	Degraded   bool
	Violations int
	Error      string
	// Report is set once Status is StatusDone; it is immutable from
	// then on.
	Report *core.Report
}

// Sentinel errors for the admission path; the HTTP layer maps them to
// status codes (429 and 503).
var (
	ErrOverloaded = errors.New("serve: queue budget exhausted")
	ErrDraining   = errors.New("serve: server is draining")
	ErrUnknownJob = errors.New("serve: unknown job")
)

// job is the server-side record; all mutable fields are guarded by
// Server.mu.
type job struct {
	id        string
	sub       *Submission
	status    Status
	attempts  int
	report    *core.Report
	err       error
	submitted time.Time
	retry     *time.Timer
}

func (j *job) view() Job {
	v := Job{ID: j.id, Status: j.status, Attempts: j.attempts}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.report != nil {
		v.Report = j.report
		v.Degraded = len(j.report.Degraded) > 0
		v.Violations = len(j.report.Violations)
	}
	return v
}

// Server is the analysis daemon. Construct with New, serve its HTTP API
// via Handler, and stop it with Drain (graceful) or Close (forced).
type Server struct {
	cfg Config

	// ctx parents every job attempt; cancel is the forced-stop switch.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	inflight int // jobs admitted but not yet terminal
	draining bool
	seq      int

	queue       chan *job
	closeQueue  sync.Once
	workersDone chan struct{}

	// testHook, when non-nil, runs at the start of every analysis
	// attempt inside the panic-isolation scope; tests use it to inject
	// panics and blocking to exercise recovery, watchdog, and drain.
	testHook func(ctx context.Context, sub *Submission)

	mSubmitted *obs.Counter
	mShed      *obs.Counter
	mRetries   *obs.Counter
	mPanics    *obs.Counter
	mDepth     *obs.Gauge
	mInflight  *obs.Gauge
	mLatency   *obs.Histogram
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		jobs:   map[string]*job{},
		// Admission bounds the jobs in flight by QueueBudget, so a
		// buffer that large means queue sends never block.
		queue:       make(chan *job, cfg.QueueBudget+cfg.Workers),
		workersDone: make(chan struct{}),
	}
	reg := cfg.Obs
	s.mSubmitted = reg.Counter("mcchecker_serve_jobs_submitted_total")
	s.mShed = reg.Counter("mcchecker_serve_shed_total")
	s.mRetries = reg.Counter("mcchecker_serve_retries_total")
	s.mPanics = reg.Counter("mcchecker_serve_panics_recovered_total")
	s.mDepth = reg.Gauge("mcchecker_serve_queue_depth")
	s.mInflight = reg.Gauge("mcchecker_serve_inflight_jobs")
	s.mLatency = reg.Histogram("mcchecker_serve_job_latency_us")
	go func() {
		// The pool rides on par.Ranks for the same bounded fan-out and
		// panic containment the analyzer uses; run() additionally
		// recovers per-job so one worker never dies with the job.
		_ = par.Ranks(cfg.Workers, cfg.Workers, func(int) error {
			for j := range s.queue {
				s.run(j)
			}
			return nil
		})
		close(s.workersDone)
	}()
	return s
}

// Submit admits a new job, or rejects it with ErrOverloaded (queue budget
// exhausted — the caller should retry later) or ErrDraining (shutdown in
// progress). The returned snapshot carries the job ID for polling.
func (s *Server) Submit(sub *Submission) (Job, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Job{}, ErrDraining
	}
	if s.inflight >= s.cfg.QueueBudget {
		s.mShed.Inc()
		s.mu.Unlock()
		return Job{}, ErrOverloaded
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		sub:       sub,
		status:    StatusQueued,
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.inflight++
	s.mSubmitted.Inc()
	v := j.view()
	s.gaugesLocked()
	s.mu.Unlock()
	s.queue <- j
	return v, nil
}

// Job returns a snapshot of one job.
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.view(), true
}

// Jobs returns snapshots of all jobs in submission order.
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// WaitJob polls until the job reaches a terminal status or ctx expires,
// returning the latest snapshot either way. Unknown IDs fail with
// ErrUnknownJob.
func (s *Server) WaitJob(ctx context.Context, id string) (Job, error) {
	for {
		v, ok := s.Job(id)
		if !ok {
			return Job{}, ErrUnknownJob
		}
		if v.Status.Terminal() || ctx.Err() != nil {
			return v, nil
		}
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// BeginDrain stops admitting new jobs. Queued and running jobs run to
// completion; jobs waiting on a retry backoff are abandoned as failed —
// a draining server has no later to retry in.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	for _, id := range s.order {
		j := s.jobs[id]
		if j.status == StatusRetryWait && j.retry != nil && j.retry.Stop() {
			s.finalizeLocked(j, StatusFailed,
				fmt.Errorf("retry abandoned (server draining): %w", j.err))
		}
	}
}

// Drain performs a graceful shutdown: stop admission, wait for every
// in-flight job to reach a terminal state, then stop the worker pool.
// ctx bounds the wait; on expiry the pool is left running and an error
// reports how many jobs were still in flight.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain interrupted with %d job(s) in flight: %w", n, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
	s.closeQueue.Do(func() { close(s.queue) })
	<-s.workersDone
	return nil
}

// Close force-stops the server: running attempts are canceled through
// their watchdog context (so they finalize as failed under the draining
// rule) and the pool is drained. Terminal job records stay queryable.
func (s *Server) Close() error {
	s.BeginDrain()
	s.cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// run executes one attempt of one job on a pool worker.
func (s *Server) run(j *job) {
	s.mu.Lock()
	j.status = StatusRunning
	j.attempts++
	attempts := j.attempts
	s.gaugesLocked()
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(s.ctx, s.cfg.JobTimeout)
	rep, err := s.analyze(ctx, j.sub)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		j.report = rep
		s.finalizeLocked(j, StatusDone, nil)
	case attempts >= s.cfg.MaxAttempts:
		s.finalizeLocked(j, StatusQuarantined,
			fmt.Errorf("quarantined after %d attempt(s): %w", attempts, err))
	case s.draining:
		s.finalizeLocked(j, StatusFailed,
			fmt.Errorf("retry abandoned (server draining): %w", err))
	default:
		j.status = StatusRetryWait
		j.err = err
		s.mRetries.Inc()
		backoff := s.cfg.RetryBackoff << (attempts - 1)
		j.retry = time.AfterFunc(backoff, func() { s.requeue(j) })
		s.gaugesLocked()
	}
}

// requeue moves a job from retry-wait back onto the queue when its
// backoff timer fires.
func (s *Server) requeue(j *job) {
	s.mu.Lock()
	if j.status != StatusRetryWait {
		s.mu.Unlock()
		return
	}
	if s.draining {
		s.finalizeLocked(j, StatusFailed,
			fmt.Errorf("retry abandoned (server draining): %w", j.err))
		s.mu.Unlock()
		return
	}
	j.status = StatusQueued
	s.gaugesLocked()
	s.mu.Unlock()
	s.queue <- j
}

// finalizeLocked records a job's terminal state. Caller holds s.mu.
func (s *Server) finalizeLocked(j *job, st Status, err error) {
	j.status = st
	j.err = err
	j.retry = nil
	s.inflight--
	s.mLatency.Observe(time.Since(j.submitted).Microseconds())
	result := string(st)
	if st == StatusDone && j.report != nil && len(j.report.Degraded) > 0 {
		result = "degraded"
	}
	s.cfg.Obs.Counter("mcchecker_serve_jobs_total", "result", result).Inc()
	s.gaugesLocked()
}

// gaugesLocked refreshes the depth gauges. Caller holds s.mu.
func (s *Server) gaugesLocked() {
	s.mDepth.Set(int64(len(s.queue)))
	s.mInflight.Set(int64(s.inflight))
}

// analyze runs one attempt: materialize the submission's trace set and
// push it through the pipeline, under the watchdog ctx. Any panic — in
// this goroutine or surfaced as a *par.PanicError from the analyzer's
// worker pool — is converted into a degraded report instead of an error,
// because a deterministic panic would otherwise burn every retry and
// quarantine a job the salvage machinery can still describe.
func (s *Server) analyze(ctx context.Context, sub *Submission) (rep *core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mPanics.Inc()
			rep, err = panicReport(r, debug.Stack()), nil
		}
	}()
	if s.testHook != nil {
		s.testHook(ctx, sub)
	}
	set, notes, err := sub.load(ctx, s.cfg.Obs)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Workers = s.cfg.AnalyzeWorkers
	opts.Engine = s.cfg.Engine
	opts.Obs = s.cfg.Obs
	opts.Ctx = ctx
	if sub.IntraOnly {
		opts.CrossProcess = false
	}
	if sub.Strict {
		rep, err = core.AnalyzeWith(set, opts)
	} else {
		rep, err = core.AnalyzeDegraded(set, opts, notes)
	}
	var pe *par.PanicError
	if errors.As(err, &pe) {
		s.mPanics.Inc()
		return panicReport(pe.Value, pe.Stack), nil
	}
	return rep, err
}

// panicReport wraps a recovered panic as a degraded (empty) report so the
// client sees what happened to its job.
func panicReport(v any, stack []byte) *core.Report {
	rep := &core.Report{}
	rep.Degraded = append(rep.Degraded,
		fmt.Sprintf("analysis panicked (recovered): %v", v),
		"panic stack:\n"+string(stack))
	return rep
}
