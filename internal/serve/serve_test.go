package serve

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// conflictSet builds the paper's Figure 2d bug — a Put racing a local
// store at the target — so jobs produce exactly one violation.
func conflictSet() *trace.Set {
	b := testutil.NewTraceBuilder(2)
	b.WinCreate(1, 0x1000, 64)
	b.Add(0, trace.Event{Kind: trace.KindWinLock, Win: 1, Target: 1, Lock: trace.LockShared,
		File: "app.go", Line: 60})
	b.Add(0, trace.Event{Kind: trace.KindPut, Win: 1, Target: 1,
		OriginAddr: 0x500, OriginType: trace.TypeInt32, OriginCount: 1,
		TargetDisp: 0, TargetType: trace.TypeInt32, TargetCount: 1,
		File: "app.go", Line: 61})
	b.Add(0, trace.Event{Kind: trace.KindWinUnlock, Win: 1, Target: 1, File: "app.go", Line: 62})
	b.Add(1, trace.Event{Kind: trace.KindStore, Addr: 0x1000, Size: 4, File: "app.go", Line: 63})
	return b.Set()
}

// uploads encodes a set as inline rank uploads.
func uploads(t *testing.T, set *trace.Set) []RankUpload {
	t.Helper()
	ups := make([]RankUpload, 0, set.Ranks())
	for _, tr := range set.Traces {
		data, err := trace.EncodeTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		ups = append(ups, RankUpload{Rank: tr.Rank, Data: data})
	}
	return ups
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func waitDone(t *testing.T, s *Server, id string) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	j, err := s.WaitJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Status.Terminal() {
		t.Fatalf("job %s still %s after wait", id, j.Status)
	}
	return j
}

func TestServeCleanJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	j, err := s.Submit(&Submission{Traces: uploads(t, conflictSet())})
	if err != nil {
		t.Fatal(err)
	}
	j = waitDone(t, s, j.ID)
	if j.Status != StatusDone {
		t.Fatalf("status = %s (error %q)", j.Status, j.Error)
	}
	if j.Degraded {
		t.Fatalf("clean upload reported degraded: %v", j.Report.Degraded)
	}
	if j.Violations != 1 {
		t.Fatalf("violations = %d, want 1", j.Violations)
	}
}

func TestServeSalvagesTruncatedUpload(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, Obs: reg})
	ups := uploads(t, conflictSet())
	ups[1].Data = ups[1].Data[:len(ups[1].Data)/2]
	j, err := s.Submit(&Submission{Traces: ups})
	if err != nil {
		t.Fatal(err)
	}
	j = waitDone(t, s, j.ID)
	if j.Status != StatusDone {
		t.Fatalf("status = %s (error %q), want done-degraded", j.Status, j.Error)
	}
	if !j.Degraded {
		t.Fatal("truncated upload did not degrade the report")
	}
	found := false
	for _, n := range j.Report.Degraded {
		if strings.Contains(n, "truncated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no truncation note in %v", j.Report.Degraded)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("mcchecker_serve_jobs_total", "result", "degraded"); got != 1 {
		t.Fatalf("jobs_total{result=degraded} = %d, want 1", got)
	}
}

func TestServeShedsWhenSaturated(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, QueueBudget: 2, Obs: reg})
	release := make(chan struct{})
	s.testHook = func(ctx context.Context, _ *Submission) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	sub := &Submission{Traces: uploads(t, conflictSet())}
	j1, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(sub); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submit past the budget: err = %v, want ErrOverloaded", err)
	}
	if got := reg.Snapshot().CounterValue("mcchecker_serve_shed_total"); got != 1 {
		t.Fatalf("shed_total = %d, want 1", got)
	}
	close(release)
	waitDone(t, s, j1.ID)
	waitDone(t, s, j2.ID)
	// With the budget drained, admission opens again.
	s.testHook = nil
	j4, err := s.Submit(sub)
	if err != nil {
		t.Fatalf("submit after drain-down: %v", err)
	}
	if j := waitDone(t, s, j4.ID); j.Status != StatusDone {
		t.Fatalf("post-shed job status = %s (%q)", j.Status, j.Error)
	}
}

func TestServePanicRecoveredAsDegraded(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, Obs: reg})
	s.testHook = func(context.Context, *Submission) { panic("injected analysis panic") }
	j, err := s.Submit(&Submission{Traces: uploads(t, conflictSet())})
	if err != nil {
		t.Fatal(err)
	}
	j = waitDone(t, s, j.ID)
	if j.Status != StatusDone || !j.Degraded {
		t.Fatalf("panicked job: status = %s degraded = %v (error %q)", j.Status, j.Degraded, j.Error)
	}
	if !strings.Contains(strings.Join(j.Report.Degraded, "\n"), "injected analysis panic") {
		t.Fatalf("panic value missing from notes: %v", j.Report.Degraded)
	}
	if !strings.Contains(strings.Join(j.Report.Degraded, "\n"), "goroutine") {
		t.Fatalf("panic stack missing from notes")
	}
	if got := reg.Snapshot().CounterValue("mcchecker_serve_panics_recovered_total"); got != 1 {
		t.Fatalf("panics_recovered_total = %d, want 1", got)
	}
	// The process — and the worker — survived: the next job runs clean.
	s.testHook = nil
	j2, err := s.Submit(&Submission{Traces: uploads(t, conflictSet())})
	if err != nil {
		t.Fatal(err)
	}
	if j2 = waitDone(t, s, j2.ID); j2.Status != StatusDone || j2.Degraded {
		t.Fatalf("job after panic: status = %s degraded = %v", j2.Status, j2.Degraded)
	}
}

func TestServeRetriesThenQuarantines(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		Workers: 1, MaxAttempts: 2, RetryBackoff: 2 * time.Millisecond, Obs: reg,
	})
	// A nonexistent directory is a poison job: it fails identically on
	// every attempt.
	j, err := s.Submit(&Submission{TraceDir: filepath.Join(t.TempDir(), "missing")})
	if err != nil {
		t.Fatal(err)
	}
	j = waitDone(t, s, j.ID)
	if j.Status != StatusQuarantined {
		t.Fatalf("status = %s (error %q), want quarantined", j.Status, j.Error)
	}
	if j.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", j.Attempts)
	}
	if !strings.Contains(j.Error, "quarantined after 2") {
		t.Fatalf("error = %q", j.Error)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("mcchecker_serve_retries_total"); got != 1 {
		t.Fatalf("retries_total = %d, want 1", got)
	}
	if got := snap.CounterValue("mcchecker_serve_jobs_total", "result", "quarantined"); got != 1 {
		t.Fatalf("jobs_total{result=quarantined} = %d, want 1", got)
	}
}

func TestServeWatchdogCancelsStuckJob(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, JobTimeout: 30 * time.Millisecond,
		MaxAttempts: 1, RetryBackoff: time.Millisecond,
	})
	// The hook wedges until the watchdog fires; the attempt then sees a
	// dead context and fails rather than holding the worker forever.
	s.testHook = func(ctx context.Context, _ *Submission) { <-ctx.Done() }
	j, err := s.Submit(&Submission{Traces: uploads(t, conflictSet())})
	if err != nil {
		t.Fatal(err)
	}
	j = waitDone(t, s, j.ID)
	if j.Status != StatusQuarantined {
		t.Fatalf("status = %s (error %q), want quarantined", j.Status, j.Error)
	}
	if !strings.Contains(j.Error, "deadline exceeded") {
		t.Fatalf("error = %q, want a deadline-exceeded chain", j.Error)
	}
}

// TestServeDrainFinishesInFlight pins the SIGTERM semantics: draining
// refuses new submissions while the in-flight job runs to completion.
func TestServeDrainFinishesInFlight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	s.testHook = func(ctx context.Context, _ *Submission) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	sub := &Submission{Traces: uploads(t, conflictSet())}
	j, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.BeginDrain()
	if _, err := s.Submit(sub); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	jj, ok := s.Job(j.ID)
	if !ok || jj.Status != StatusDone {
		t.Fatalf("in-flight job after drain: status = %s (%q)", jj.Status, jj.Error)
	}
}

func TestServeDrainAbandonsRetryWait(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, MaxAttempts: 3, RetryBackoff: time.Hour,
	})
	j, err := s.Submit(&Submission{TraceDir: filepath.Join(t.TempDir(), "missing")})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first failure to park the job in retry-wait.
	deadline := time.Now().Add(10 * time.Second)
	for {
		jj, _ := s.Job(j.ID)
		if jj.Status == StatusRetryWait {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached retry-wait (status %s)", jj.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with a parked retry: %v", err)
	}
	jj, _ := s.Job(j.ID)
	if jj.Status != StatusFailed || !strings.Contains(jj.Error, "draining") {
		t.Fatalf("parked job after drain: status = %s error = %q", jj.Status, jj.Error)
	}
}

func TestParseSubmissionRejectsHostileShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"both", `{"trace_dir":"x","traces":[{"rank":0,"data":"AA=="}]}`},
		{"unknown field", `{"trace_dir":"x","bogus":1}`},
		{"trailing", `{"trace_dir":"x"} junk`},
		{"negative rank", `{"traces":[{"rank":-1,"data":"AA=="}]}`},
		{"huge rank", `{"traces":[{"rank":1000000,"data":"AA=="}]}`},
		{"duplicate rank", `{"traces":[{"rank":0,"data":"AA=="},{"rank":0,"data":"AA=="}]}`},
		{"empty data", `{"traces":[{"rank":0,"data":""}]}`},
		{"not json", `put get store`},
	}
	for _, tc := range cases {
		if _, err := ParseSubmission([]byte(tc.body)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.body)
		}
	}
}
