package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Handler returns the daemon's HTTP API:
//
//	POST /jobs          submit a trace set; 202 + job snapshot, or 429
//	                    (queue budget exhausted, with Retry-After) /
//	                    503 (draining)
//	GET  /jobs          list all job snapshots (no reports)
//	GET  /jobs/{id}     one job; ?wait=DURATION long-polls for a
//	                    terminal state; terminal done jobs embed the
//	                    full report
//	GET  /healthz       liveness (always 200 while the process serves)
//	GET  /readyz        readiness (503 once draining)
//
// plus the standard observability surface (/metrics, /stats,
// /stats.json, /debug/pprof/*) shared with the stats listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	obs.RegisterStats(mux, s.cfg.Obs)
	return mux
}

// jobResponse is the wire form of a job snapshot.
type jobResponse struct {
	ID         string          `json:"id"`
	Status     Status          `json:"status"`
	Attempts   int             `json:"attempts"`
	Degraded   bool            `json:"degraded"`
	Violations int             `json:"violations"`
	Error      string          `json:"error,omitempty"`
	Report     json.RawMessage `json:"report,omitempty"`
}

func toResponse(j Job, withReport bool) jobResponse {
	resp := jobResponse{
		ID: j.ID, Status: j.Status, Attempts: j.Attempts,
		Degraded: j.Degraded, Violations: j.Violations, Error: j.Error,
	}
	if withReport && j.Status == StatusDone && j.Report != nil {
		if data, err := j.Report.JSON(); err == nil {
			resp.Report = data
		}
	}
	return resp
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxSubmissionBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sub, err := ParseSubmission(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(sub)
	switch {
	case errors.Is(err, ErrOverloaded):
		// Load shedding: tell the client when to come back rather than
		// queueing without bound. The budget drains at job-latency
		// speed, so a short fixed hint is honest enough.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusAccepted, toResponse(job, false))
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	out := struct {
		Jobs []jobResponse `json:"jobs"`
	}{Jobs: make([]jobResponse, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, toResponse(j, false))
	}
	writeJSON(w, http.StatusOK, out)
}

// maxWait caps the ?wait long-poll so a stalled client cannot pin a
// handler goroutine indefinitely.
const maxWait = time.Minute

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" && !j.Status.Terminal() {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, errors.New("serve: bad wait duration"))
			return
		}
		if d > maxWait {
			d = maxWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		j, _ = s.WaitJob(ctx, id)
		cancel()
	}
	writeJSON(w, http.StatusOK, toResponse(j, true))
}
