package mcchecker_test

import (
	"fmt"

	mcchecker "repro"
	"repro/internal/mpi"
)

// ExampleRun demonstrates the one-call workflow: run a two-rank program on
// the simulated MPI with the profiler attached and analyze the trace. The
// program contains the paper's Figure 2a bug: a store to a Put's origin
// buffer before the epoch closes.
func ExampleRun() {
	report, err := mcchecker.Run(mcchecker.Config{Ranks: 2}, func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			buf := p.Alloc(8, "buf")
			buf.SetInt64(0, 7)
			w.Put(buf, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			buf.SetInt64(0, 9) // conflicts with the pending Put
		}
		w.Fence(mpi.AssertNone)
		w.Free()
		return nil
	})
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	v := report.Errors()[0]
	fmt.Printf("%s [%s]\n", v.Severity, v.Class)
	fmt.Printf("%s conflicts with %s\n", v.A.Kind, v.B.Kind)
	// Output:
	// ERROR [within-epoch]
	// Put conflicts with store
}

// ExampleRunOnline shows the streaming mode: violations are delivered via
// callback while the program is still running.
func ExampleRunOnline() {
	_, err := mcchecker.RunOnline(mcchecker.Config{Ranks: 2}, func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		w.Fence(mpi.AssertNone)
		if p.Rank() == 0 {
			out := p.Alloc(8, "out")
			w.Get(out, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			_ = out.Int64At(0) // reads stale data: the Get is nonblocking
		}
		w.Fence(mpi.AssertNone)
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}, func(v *mcchecker.Violation) {
		fmt.Printf("online: %s vs %s\n", v.A.Kind, v.B.Kind)
	})
	if err != nil {
		fmt.Println("run failed:", err)
	}
	// Output:
	// online: Get vs load
}

// ExampleConfig_intraEpochOnly reproduces the SyncChecker baseline of the
// paper's related-work comparison: intra-epoch-only detection misses
// conflicts across processes.
func ExampleConfig_intraEpochOnly() {
	crossProcessBug := func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			src := p.Alloc(8, "src")
			w.Lock(mpi.LockShared, 1)
			w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			w.Unlock(1)
		} else {
			win.SetInt64(0, 3) // races with the remote Put
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
	baseline, _ := mcchecker.Run(mcchecker.Config{Ranks: 2, IntraEpochOnly: true}, crossProcessBug)
	full, _ := mcchecker.Run(mcchecker.Config{Ranks: 2}, crossProcessBug)
	fmt.Printf("SyncChecker-style: %d errors\n", len(baseline.Errors()))
	fmt.Printf("MC-Checker: %d errors\n", len(full.Errors()))
	// Output:
	// SyncChecker-style: 0 errors
	// MC-Checker: 1 errors
}
