// online: the streaming analysis mode (paper §VII-B future work). The
// checker consumes events while the 8-rank program runs; each concurrent
// region is analyzed as soon as its closing barrier completes, and
// violations are reported through a callback long before the program
// finishes its later (clean) phases.
//
// Run with:
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	mcchecker "repro"
	"repro/internal/mpi"
)

func main() {
	fmt.Println("running an 8-rank program with a bug in phase 1 of 5...")
	report, err := mcchecker.RunOnline(mcchecker.Config{Ranks: 8},
		func(p *mpi.Proc) error {
			win := p.Alloc(64, "win")
			w := p.WinCreate(win, 1, p.CommWorld())
			for ph := 0; ph < 5; ph++ {
				w.Fence(mpi.AssertNone)
				if p.Rank() == 0 {
					src := p.Alloc(8, "src")
					w.Put(src, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
					if ph == 0 {
						src.SetInt64(0, -1) // the bug: only in phase 0
					}
				}
				w.Fence(mpi.AssertNone)
				p.Barrier(p.CommWorld())
			}
			w.Free()
			return nil
		},
		func(v *mcchecker.Violation) {
			fmt.Printf("  [live, mid-run] %s: %s vs %s at %s/%s\n",
				v.Severity, v.A.Kind, v.B.Kind, v.A.Loc(), v.B.Loc())
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final report: %d error(s), %d event(s) analyzed across %d region(s)\n",
		len(report.Errors()), report.EventsAnalyzed, report.Regions)
}
