// lockopts: the paper's second case study (§VII-A-2, Figure 7) — the RMA
// test case from the MPICH package, written by an MPI expert, that still
// contained a memory consistency bug. Worker ranks put/get a master's
// counter window under locks while the master touches the same cells with
// plain loads and stores.
//
// The example runs three configurations:
//   - the revised bug with shared locks (reported as an ERROR),
//   - the original bug with exclusive locks (reported as a WARNING, since
//     the exclusive locks serialize the transfers),
//   - the fixed program (clean).
//
// Run with:
//
//	go run ./examples/lockopts
package main

import (
	"fmt"
	"log"

	mcchecker "repro"
	"repro/internal/apps"
)

func main() {
	const ranks = 16 // the paper triggers it at 64; any count ≥ 2 works

	fmt.Println("== shared-lock revision (the paper's evaluated variant) ==")
	report, err := mcchecker.Run(mcchecker.Config{Ranks: ranks}, apps.Lockopts(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("errors: %d, warnings: %d\n", len(report.Errors()), len(report.Warnings()))
	fmt.Print(report)

	fmt.Println("\n== original exclusive-lock bug (warning only) ==")
	report, err = mcchecker.Run(mcchecker.Config{Ranks: ranks}, apps.LockoptsOriginal())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("errors: %d, warnings: %d\n", len(report.Errors()), len(report.Warnings()))

	fmt.Println("\n== fixed program ==")
	report, err = mcchecker.Run(mcchecker.Config{Ranks: ranks}, apps.Lockopts(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}
