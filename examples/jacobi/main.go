// jacobi: a one-sided Jacobi relaxation with halo exchange by MPI_Put
// under fences — the paper's fifth application, with the injected bug of
// Table II: the buggy variant re-seeds its halo cells during the exchange
// epoch, racing with the neighbours' puts into the same cells (the
// Figure 2d error class, across processes).
//
// The example also writes the trace to disk and re-analyzes it offline,
// demonstrating the paper's two-phase workflow (online Profiler, offline
// DN-Analyzer).
//
// Run with:
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	mcchecker "repro"
	"repro/internal/apps"
)

func main() {
	traceDir := filepath.Join(os.TempDir(), "mcchecker-jacobi-traces")
	defer os.RemoveAll(traceDir)

	fmt.Println("== buggy Jacobi: phase 1, profile the run and write traces ==")
	set, err := mcchecker.Trace(mcchecker.Config{Ranks: 4, TraceDir: traceDir}, apps.Jacobi(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d events from %d ranks into %s\n", set.TotalEvents(), set.Ranks(), traceDir)

	fmt.Println("\n== phase 2: offline analysis of the trace files ==")
	report, err := mcchecker.AnalyzeTraceDir(traceDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	fmt.Println("\n== fixed Jacobi ==")
	report, err = mcchecker.Run(mcchecker.Config{Ranks: 4}, apps.Jacobi(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}
