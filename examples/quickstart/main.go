// Quickstart: the motivating example of the paper's Figure 1, checked end
// to end. An MPI_Get is nonblocking; reading its destination buffer before
// the epoch closes both misbehaves (the value is stale) and is a memory
// consistency error that MC-Checker pinpoints with file:line diagnostics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mcchecker "repro"
	"repro/internal/mpi"
)

func main() {
	fmt.Println("== buggy version (Figure 1): load before the epoch closes ==")
	report, err := mcchecker.Run(mcchecker.Config{Ranks: 2}, figure1(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	fmt.Println("\n== fixed version: load after Win_unlock ==")
	report, err = mcchecker.Run(mcchecker.Config{Ranks: 2}, figure1(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}

// figure1 builds the paper's motivating two-rank program. Rank 1 exposes a
// value in a window; rank 0 locks, gets it into `out`, and (buggy) reads
// and rewrites `out` inside the epoch.
func figure1(buggy bool) func(p *mpi.Proc) error {
	return func(p *mpi.Proc) error {
		win := p.AllocFloat64(1, "shared")
		if p.Rank() == 1 {
			win.SetFloat64(0, 42)
		}
		w := p.WinCreate(win, 8, p.CommWorld())
		p.Barrier(p.CommWorld())

		if p.Rank() == 0 {
			out := p.AllocFloat64(1, "out")
			w.Lock(mpi.LockShared, 1) // line 1 of Figure 1
			w.Get(out, 0, 1, mpi.Float64, 1, 0, 1, mpi.Float64)
			if buggy {
				stale := out.Float64At(0)  // line 3: load of out — stale!
				out.SetFloat64(0, stale+1) // line 4: store — overwritten by the Get
				w.Unlock(1)                // line 6: Get completes here
			} else {
				w.Unlock(1)
				fresh := out.Float64At(0)
				fmt.Printf("rank 0 correctly read %v\n", fresh)
			}
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
}
