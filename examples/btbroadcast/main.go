// BT-broadcast: the paper's first case study (§VII-A-1, Figure 6). A
// binary-tree broadcast spins on a flag fetched with a nonblocking MPI_Get
// inside the epoch; the flag never changes, so the original program loops
// forever. MC-Checker reports the conflicting Get and load with their
// source lines.
//
// Run with:
//
//	go run ./examples/btbroadcast
package main

import (
	"fmt"
	"log"

	mcchecker "repro"
	"repro/internal/apps"
)

func main() {
	// ST-Analyzer over the application source selects what to instrument.
	static, err := mcchecker.StaticAnalyze("internal/apps")
	relevant := []string{"bcastwin", "check", "payload"}
	if err == nil && len(static.BufferNames()) > 0 {
		relevant = static.BufferNames()
		fmt.Printf("ST-Analyzer selected %d buffers to instrument\n", len(relevant))
	} else {
		fmt.Println("ST-Analyzer source not found (running outside the repo); using the recorded set")
	}

	fmt.Println("== buggy broadcast: spin loop reads the Get destination inside the epoch ==")
	report, err := mcchecker.Run(mcchecker.Config{Ranks: 2, Relevant: relevant}, apps.BTBroadcast(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	fmt.Println("\n== fixed broadcast: re-lock per poll, read after the unlock ==")
	report, err = mcchecker.Run(mcchecker.Config{Ranks: 2, Relevant: relevant}, apps.BTBroadcast(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}
