// counter: an ADLB-style dynamic load-balancing work queue on MPI-3 RMA —
// the extension direction the paper's §V sketches. The correct version
// claims work items with the atomic MPI_Fetch_and_op (clean under
// MC-Checker's accumulate-family rules); the buggy version emulates
// fetch-and-add with Get + local increment + Put, the classic lost-update
// race that MC-Checker pinpoints.
//
// Run with:
//
//	go run ./examples/counter
package main

import (
	"fmt"
	"log"

	mcchecker "repro"
	"repro/internal/apps"
)

func main() {
	const ranks, items = 8, 4

	fmt.Println("== fetch-and-op work queue (MPI-3 atomics): clean ==")
	report, err := mcchecker.Run(mcchecker.Config{Ranks: ranks}, apps.Counter(false, items))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	fmt.Println("\n== get/put emulation of fetch-and-add: lost updates ==")
	report, err = mcchecker.Run(mcchecker.Config{Ranks: ranks}, apps.Counter(true, items))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d error(s) found; first:\n", len(report.Errors()))
	if len(report.Errors()) > 0 {
		fmt.Println(report.Errors()[0])
	}
}
