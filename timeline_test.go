package mcchecker

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs/tracing"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// traceBugCase simulates one bug case and writes its traces to a
// directory, so the timeline tests exercise the full decode → analyze
// pipeline the CLI runs.
func traceBugCase(t *testing.T, bc apps.BugCase) string {
	t.Helper()
	ranks := bc.Ranks
	if ranks > 8 {
		ranks = 8
	}
	sink := trace.NewMemorySink()
	var rel profiler.Relevance
	if bc.RelevantBuffers != nil {
		rel = profiler.FromNames(bc.RelevantBuffers)
	}
	pr := profiler.New(sink, rel)
	if err := mpi.Run(ranks, mpi.Options{Hook: pr}, bc.Buggy); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := trace.WriteDir(dir, sink.Set()); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestTimelineByteIdenticalAcrossWorkers is the determinism contract of
// the causal-tracing layer: a full bug-case analysis recorded in
// deterministic mode (logical ticks, scope lanes) exports byte-identical
// Chrome trace JSON however many times it runs and at any worker count.
func TestTimelineByteIdenticalAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 1, 4, runtime.GOMAXPROCS(0)} // repeat w=1 to cover run-to-run too
	for _, bc := range apps.BugCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			dir := traceBugCase(t, bc)
			record := func(workers int) []byte {
				tr := tracing.NewDeterministic()
				set, err := trace.ReadDirTraced(dir, nil, tr)
				if err != nil {
					t.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.Workers = workers
				opts.Trace = tr
				rep, err := core.AnalyzeWith(set, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				core.AddWitnessTracks(tr, rep)
				var buf bytes.Buffer
				if err := tr.WriteChromeTrace(&buf); err != nil {
					t.Fatal(err)
				}
				if _, err := tracing.ValidateChromeTrace(buf.Bytes()); err != nil {
					t.Fatalf("workers=%d: invalid export: %v", workers, err)
				}
				return buf.Bytes()
			}
			base := record(workerCounts[0])
			for _, w := range workerCounts[1:] {
				if got := record(w); !bytes.Equal(got, base) {
					t.Errorf("workers=%d: timeline diverged from workers=%d baseline", w, workerCounts[0])
				}
			}
		})
	}
}

// TestEveryViolationCarriesWitness pins the provenance guarantee: every
// violation the dynamic analyzer reports explains itself with a non-empty
// happens-before witness chain, in the struct, the text rendering, and
// the JSON export.
func TestEveryViolationCarriesWitness(t *testing.T) {
	for _, bc := range apps.BugCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			dir := traceBugCase(t, bc)
			set, err := trace.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.AnalyzeWith(set, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) == 0 {
				t.Fatalf("%s: no violations detected", bc.Name)
			}
			for i, v := range rep.Violations {
				if len(v.Witness) == 0 {
					t.Errorf("violation %d has no witness chain: %s", i+1, v.Rule)
					continue
				}
				if !bytes.Contains([]byte(v.String()), []byte("witness (happens-before chain left open)")) {
					t.Errorf("violation %d text rendering lacks the witness block", i+1)
				}
			}
			js, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(js, []byte(`"witness"`)) {
				t.Error("JSON export lacks the witness field")
			}
		})
	}
}
