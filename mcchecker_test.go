package mcchecker

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mpi"
)

func buggyBody(p *mpi.Proc) error {
	win := p.Alloc(64, "win")
	w := p.WinCreate(win, 1, p.CommWorld())
	w.Fence(mpi.AssertNone)
	if p.Rank() == 0 {
		buf := p.Alloc(8, "buf")
		w.Put(buf, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
		buf.SetInt64(0, 1) // bug
	}
	w.Fence(mpi.AssertNone)
	w.Free()
	return nil
}

func TestRunDetects(t *testing.T) {
	rep, err := Run(Config{Ranks: 2}, buggyBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Fatalf("errors = %d:\n%s", len(rep.Errors()), rep)
	}
	if rep.Errors()[0].Class != WithinEpoch {
		t.Error("wrong class")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}, buggyBody); err == nil {
		t.Error("zero ranks must error")
	}
}

func TestRunCollectStats(t *testing.T) {
	rep, err := Run(Config{Ranks: 2, CollectStats: true}, buggyBody)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats == nil {
		t.Fatal("CollectStats did not attach a snapshot")
	}
	if got := rep.Stats.CounterValue("mcchecker_analysis_events_total"); got != int64(rep.EventsAnalyzed) {
		t.Errorf("stats events = %d, report says %d", got, rep.EventsAnalyzed)
	}
	if rep.Stats.Span("mcchecker_phase_seconds", "phase", "match").Count != 1 {
		t.Error("phase spans missing from snapshot")
	}
	// Off by default.
	plain, err := Run(Config{Ranks: 2}, buggyBody)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats != nil {
		t.Error("stats attached without CollectStats")
	}
}

func TestRunOnlineCollectStats(t *testing.T) {
	rep, err := RunOnline(Config{Ranks: 2, CollectStats: true}, buggyBody, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats == nil {
		t.Fatal("CollectStats did not attach a snapshot")
	}
	if rep.Stats.CounterValue("mcchecker_stream_slabs_total") == 0 {
		t.Error("stream slab metrics missing from online snapshot")
	}
}

func TestTraceDirAndOfflineAnalysis(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	set, err := Trace(Config{Ranks: 2, TraceDir: dir}, buggyBody)
	if err != nil {
		t.Fatal(err)
	}
	if set.TotalEvents() == 0 {
		t.Fatal("no events collected")
	}
	rep, err := AnalyzeTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Fatalf("offline analysis:\n%s", rep)
	}
	// Check() on the in-memory set agrees.
	rep2, err := Check(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Errors()) != 1 {
		t.Error("Check disagrees with AnalyzeTraceDir")
	}
}

func TestIntraEpochOnlyConfig(t *testing.T) {
	crossBug := func(p *mpi.Proc) error {
		win := p.Alloc(64, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		if p.Rank() == 0 {
			buf := p.Alloc(8, "buf")
			w.Lock(mpi.LockShared, 1)
			w.Put(buf, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
			w.Unlock(1)
		} else {
			win.SetInt64(0, 5)
		}
		p.Barrier(p.CommWorld())
		w.Free()
		return nil
	}
	rep, err := Run(Config{Ranks: 2, IntraEpochOnly: true}, crossBug)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("SyncChecker mode must miss the cross-process bug:\n%s", rep)
	}
	rep, err = Run(Config{Ranks: 2}, crossBug)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) == 0 {
		t.Error("full mode must find it")
	}
}

func TestSelectiveInstrumentationConfig(t *testing.T) {
	// Omitting the relevant buffer from Config.Relevant hides the local
	// store, so the within-epoch bug disappears from the trace — the
	// false-negative mode ST-Analyzer's conservativeness guards against.
	rep, err := Run(Config{Ranks: 2, Relevant: []string{"win"}}, buggyBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("expected no detection with buf uninstrumented:\n%s", rep)
	}
	rep, err = Run(Config{Ranks: 2, Relevant: []string{"win", "buf"}}, buggyBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Errorf("selective instrumentation with the right set must detect:\n%s", rep)
	}
}

func TestRunOnline(t *testing.T) {
	fired := 0
	rep, err := RunOnline(Config{Ranks: 2}, buggyBody, func(v *Violation) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 || fired != 1 {
		t.Errorf("errors = %d, callbacks = %d:\n%s", len(rep.Errors()), fired, rep)
	}
	// Online and batch agree.
	batch, err := Run(Config{Ranks: 2}, buggyBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Errors()) != len(rep.Errors()) {
		t.Error("online and batch disagree")
	}
	if _, err := RunOnline(Config{}, buggyBody, nil); err == nil {
		t.Error("zero ranks must error")
	}
}

func TestStaticAnalyzeFacade(t *testing.T) {
	dir := t.TempDir()
	src := `package demo
import "repro/internal/mpi"
func body(p *mpi.Proc) error {
	win := p.Alloc(64, "win")
	w := p.WinCreate(win, 1, p.CommWorld())
	w.Fence(0)
	buf := p.Alloc(8, "buf")
	w.Put(buf, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
	w.Fence(0)
	return nil
}
`
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := StaticAnalyze(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := rep.BufferNames()
	if len(names) != 2 || names[0] != "buf" || names[1] != "win" {
		t.Errorf("BufferNames = %v", names)
	}
}

// TestStaticThenRunPipeline wires all three components end to end:
// ST-Analyzer output feeds the Profiler's relevance set, and DN-Analyzer
// still finds the bug.
func TestStaticThenRunPipeline(t *testing.T) {
	dir := t.TempDir()
	src := `package demo
import "repro/internal/mpi"
func Buggy(p *mpi.Proc) error {
	win := p.Alloc(64, "win")
	w := p.WinCreate(win, 1, p.CommWorld())
	w.Fence(0)
	if p.Rank() == 0 {
		buf := p.Alloc(8, "buf")
		w.Put(buf, 0, 1, mpi.Int64, 1, 0, 1, mpi.Int64)
		buf.SetInt64(0, 1)
	}
	w.Fence(0)
	w.Free()
	return nil
}
`
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	static, err := StaticAnalyze(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Ranks: 2, Relevant: static.BufferNames()}, buggyBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors()) != 1 {
		t.Errorf("pipeline lost the bug:\n%s", rep)
	}
}
