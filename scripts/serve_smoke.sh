#!/bin/sh
# serve_smoke.sh — end-to-end exercise of the analysis daemon.
#
# Builds mcchecker, starts `mcchecker serve`, submits one clean job and
# one truncated-upload job over real HTTP, asserts the clean job ends
# healthy (done, not degraded, 1 violation on the planted conflict) and
# the damaged job ends degraded-but-done (salvage), then sends SIGTERM
# and asserts the daemon drains and exits 0. Requires only go + python3.
set -eu

ADDR="${SERVE_ADDR:-127.0.0.1:7787}"
TMP="${SERVE_TMP:-$(mktemp -d)}"
BASE="http://$ADDR"

go build -o "$TMP/mcchecker" ./cmd/mcchecker

# Build the two submission bodies from a bundled bug case: run the
# emulate app persisting traces, then wrap them as inline uploads
# (the second body with rank 1's stream cut in half).
"$TMP/mcchecker" run -app emulate -trace "$TMP/traces" >/dev/null 2>&1 || true
python3 - "$TMP" <<'EOF'
import base64, json, os, sys
tmp = sys.argv[1]
ups = []
for name in sorted(os.listdir(os.path.join(tmp, "traces"))):
    rank = int(name.split(".")[1])
    data = open(os.path.join(tmp, "traces", name), "rb").read()
    ups.append({"rank": rank, "data": base64.b64encode(data).decode()})
json.dump({"traces": ups}, open(os.path.join(tmp, "clean.json"), "w"))
cut = [dict(u) for u in ups]
raw = base64.b64decode(cut[1]["data"])
cut[1]["data"] = base64.b64encode(raw[: len(raw) // 2]).decode()
json.dump({"traces": cut}, open(os.path.join(tmp, "truncated.json"), "w"))
EOF

"$TMP/mcchecker" serve -addr "$ADDR" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Wait for the daemon to come up.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "serve-smoke: daemon never became healthy" >&2; exit 1; }
    sleep 0.1
done
echo "serve-smoke: daemon healthy at $BASE"

submit() {
    curl -sf -X POST --data-binary "@$1" "$BASE/jobs" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

CLEAN_ID=$(submit "$TMP/clean.json")
TRUNC_ID=$(submit "$TMP/truncated.json")

check_job() {
    # check_job ID WANT_DEGRADED MIN_VIOLATIONS LABEL — long-poll to a
    # terminal state, assert status=done and the expected degraded flag.
    curl -sf "$BASE/jobs/$1?wait=30s" | python3 -c "
import json, sys
j = json.load(sys.stdin)
assert j['status'] == 'done', ('$4', j)
assert j['degraded'] == $2, ('$4', j)
assert j['violations'] >= $3, ('$4', j)
print('serve-smoke: $4 job ok:', j['status'],
      'degraded' if j['degraded'] else 'healthy',
      j['violations'], 'violation(s)')
"
}

check_job "$CLEAN_ID" False 1 clean
check_job "$TRUNC_ID" True 0 truncated

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVE_PID"
if wait "$SERVE_PID"; then
    echo "serve-smoke: daemon drained and exited 0"
else
    echo "serve-smoke: daemon exited non-zero on SIGTERM" >&2
    exit 1
fi
trap - EXIT
echo "serve-smoke: PASS"
