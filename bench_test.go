package mcchecker

// Benchmarks regenerating the paper's evaluation, one per table/figure
// (run `go test -bench=. -benchmem`). Absolute numbers are machine-local;
// the reproduction targets are the paper's shapes. cmd/mcbench prints the
// corresponding tables with percentages.

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/profiler"
	"repro/internal/stream"
	"repro/internal/trace"
)

// --- Table II: full detection pipeline per bug case ---------------------

func BenchmarkTable2Detection(b *testing.B) {
	for _, bc := range apps.BugCases() {
		bc := bc
		ranks := bc.Ranks
		if ranks > 8 {
			ranks = 8
		}
		b.Run(bc.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink := trace.NewMemorySink()
				pr := profiler.New(sink, profiler.FromNames(bc.RelevantBuffers))
				if err := mpi.Run(ranks, mpi.Options{Hook: pr}, bc.Buggy); err != nil {
					b.Fatal(err)
				}
				rep, err := core.Analyze(sink.Set())
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Errors()) == 0 {
					b.Fatal("bug not detected")
				}
			}
		})
	}
}

// --- Figure 8: native vs profiled vs fully instrumented -----------------

// fig8Ranks keeps the benchmark variant affordable; cmd/mcbench runs the
// paper's 64-rank configuration.
const fig8Ranks = 16

func benchWorkload(b *testing.B, body func(p *mpi.Proc) error, hook mpi.Hook) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := mpi.Run(fig8Ranks, mpi.Options{Hook: hook}, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for _, wl := range apps.Workloads() {
		wl := wl
		body := wl.Body(0.5)
		b.Run(wl.Name+"/native", func(b *testing.B) {
			benchWorkload(b, body, nil)
		})
		b.Run(wl.Name+"/profiled", func(b *testing.B) {
			pr := profiler.New(trace.NewCountingSink(nil), profiler.FromNames(wl.RelevantBuffers))
			benchWorkload(b, body, pr)
		})
		b.Run(wl.Name+"/fullinstr", func(b *testing.B) {
			pr := profiler.New(trace.NewCountingSink(nil), nil)
			benchWorkload(b, body, pr)
		})
	}
}

// --- Figure 9/10: LU strong scaling --------------------------------------

func BenchmarkFig9LU(b *testing.B) {
	const n = 128
	for _, ranks := range []int{8, 16, 32, 64} {
		ranks := ranks
		body := apps.LUWorkload(n)
		b.Run(fmt.Sprintf("ranks%d/native", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := mpi.Run(ranks, mpi.Options{}, body); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ranks%d/profiled", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr := profiler.New(trace.NewCountingSink(nil), profiler.FromNames([]string{"matrix", "panel"}))
				if err := mpi.Run(ranks, mpi.Options{Hook: pr}, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §IV-C-4 ablation: linear vs quadratic cross-process detection -------

func BenchmarkAblationLinearVsQuadratic(b *testing.B) {
	for _, ops := range []int{256, 1024, 4096} {
		set := experiments.SyntheticRegion(16, ops)
		b.Run(fmt.Sprintf("linear/ops%d", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.AnalyzeWith(set, core.Options{CrossProcess: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Violations) == 0 {
					b.Fatal("planted conflict missed")
				}
			}
		})
		b.Run(fmt.Sprintf("quadratic/ops%d", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := baseline.QuadraticAnalyze(set)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Violations) == 0 {
					b.Fatal("planted conflict missed")
				}
			}
		})
	}
}

// --- DESIGN decision ablations -------------------------------------------

// Vector clocks (O(1) queries after one pass) vs naive reachability.
func BenchmarkHappensBeforeQueries(b *testing.B) {
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(8, mpi.Options{Hook: pr}, apps.LUWorkload(48)); err != nil {
		b.Fatal(err)
	}
	set := sink.Set()
	m, err := model.Build(set)
	if err != nil {
		b.Fatal(err)
	}
	ms, err := match.Run(m)
	if err != nil {
		b.Fatal(err)
	}
	d, err := dag.Build(m, ms)
	if err != nil {
		b.Fatal(err)
	}
	n := dag.BuildNaive(m, ms)
	// Query pairs spread across the trace.
	var pairs [][2]trace.ID
	for r := 0; r < set.Ranks(); r++ {
		t := set.Traces[r]
		q := (r + 3) % set.Ranks()
		u := set.Traces[q]
		for i := 0; i < len(t.Events); i += 97 {
			j := (i * 31) % len(u.Events)
			pairs = append(pairs, [2]trace.ID{t.Events[i].ID(), u.Events[j].ID()})
		}
	}
	b.Run("vectorclock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			_ = d.Concurrent(p[0], p[1])
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			_ = n.Concurrent(p[0], p[1])
		}
	})
}

// Algorithm 1 (progress counters) vs scanning all traces per call.
func BenchmarkSyncMatching(b *testing.B) {
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(8, mpi.Options{Hook: pr}, apps.SKaMPI(6)); err != nil {
		b.Fatal(err)
	}
	m, err := model.Build(sink.Set())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("algorithm1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := match.Run(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := match.RunNaive(m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Multithreaded DN-Analyzer (§VI planned work): serial vs parallel
// cross-process detection over many regions. Regions are embarrassingly
// parallel, so on a multicore machine workers4 approaches a linear speedup;
// on single-core machines (like some CI hosts) the two variants tie, which
// is itself the correct result. Equivalence of results is asserted
// separately in TestParallelAnalysisEquivalence.
func BenchmarkParallelRegions(b *testing.B) {
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	body := func(p *mpi.Proc) error {
		win := p.Alloc(512, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		p.Barrier(p.CommWorld())
		src := p.Alloc(64, "src")
		for i := 0; i < 40; i++ {
			for k := 0; k < 6; k++ {
				target := (p.Rank() + 1 + k) % p.Size()
				w.Lock(mpi.LockShared, target)
				w.Put(src, 0, 8, mpi.Float64, target, uint64(p.Rank())*64, 8, mpi.Float64)
				w.Unlock(target)
			}
			p.Barrier(p.CommWorld())
		}
		w.Free()
		return nil
	}
	if err := mpi.Run(8, mpi.Options{Hook: pr}, body); err != nil {
		b.Fatal(err)
	}
	set := sink.Set()
	// Build the pipeline once; benchmark only the detection phase that
	// Workers parallelizes.
	m, err := model.Build(set)
	if err != nil {
		b.Fatal(err)
	}
	ms, err := match.Run(m)
	if err != nil {
		b.Fatal(err)
	}
	d, err := dag.Build(m, ms)
	if err != nil {
		b.Fatal(err)
	}
	epochs, opEpoch, err := core.ExtractEpochs(m)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{CrossProcess: true, Workers: workers}
				rep, err := core.NewAnalyzer(m, d, epochs, opEpoch, opts).Run()
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Violations) != 0 {
					b.Fatal("race-free pattern flagged")
				}
			}
		})
	}
}

// --- §VII comparison: SyncChecker baseline -------------------------------

func BenchmarkSyncCheckerBaseline(b *testing.B) {
	bc := apps.BugCases()[0] // emulate
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(2, mpi.Options{Hook: pr}, bc.Buggy); err != nil {
		b.Fatal(err)
	}
	set := sink.Set()
	b.Run("mcchecker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Analyze(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("synccheck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SyncCheckerAnalyze(set); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- §VII-B extension: streaming (online) vs batch (offline) analysis ----

func BenchmarkStreamVsBatch(b *testing.B) {
	body := func(p *mpi.Proc) error {
		win := p.Alloc(256, "win")
		w := p.WinCreate(win, 1, p.CommWorld())
		for i := 0; i < 10; i++ {
			w.Fence(mpi.AssertNone)
			src := p.Alloc(8, "src")
			w.Put(src, 0, 1, mpi.Int64, (p.Rank()+1)%p.Size(), uint64(p.Rank())*8, 1, mpi.Int64)
			w.Fence(mpi.AssertNone)
			p.Barrier(p.CommWorld())
		}
		w.Free()
		return nil
	}
	b.Run("online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := stream.New(4, nil)
			pr := profiler.New(sc, nil)
			if err := mpi.Run(4, mpi.Options{Hook: pr}, body); err != nil {
				b.Fatal(err)
			}
			if _, err := sc.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink := trace.NewMemorySink()
			pr := profiler.New(sink, nil)
			if err := mpi.Run(4, mpi.Options{Hook: pr}, body); err != nil {
				b.Fatal(err)
			}
			if _, err := core.Analyze(sink.Set()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Profiler hot path ----------------------------------------------------

func BenchmarkProfilerEmitCost(b *testing.B) {
	// One rank storing repeatedly: isolates the per-access instrumentation
	// cost that Figure 8's overhead consists of.
	run := func(b *testing.B, hook mpi.Hook) {
		b.Helper()
		err := mpi.Run(1, mpi.Options{Hook: hook}, func(p *mpi.Proc) error {
			buf := p.AllocFloat64(8, "hot")
			for i := 0; i < b.N; i++ {
				buf.SetFloat64(0, float64(i))
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("native", func(b *testing.B) { run(b, nil) })
	b.Run("profiled", func(b *testing.B) {
		run(b, profiler.New(trace.NewCountingSink(nil), nil))
	})
}

// --- Analysis pipeline stages (profiling the offline side) ---------------

func BenchmarkAnalysisPipeline(b *testing.B) {
	// A moderately sized clean workload trace.
	sink := trace.NewMemorySink()
	pr := profiler.New(sink, nil)
	if err := mpi.Run(8, mpi.Options{Hook: pr}, apps.LUWorkload(64)); err != nil {
		b.Fatal(err)
	}
	set := sink.Set()
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := core.Analyze(set)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				b.Fatal("unexpected violations")
			}
		}
	})
}
