// Package mcchecker is the public entry point of the MC-Checker
// reproduction: a detector of memory consistency errors in MPI one-sided
// applications (Chen et al., SC 2014), together with the in-process MPI-2.2
// simulator the applications run on.
//
// The three components of the paper map onto this module as follows:
//
//   - ST-Analyzer (static selection of variables to instrument):
//     StaticAnalyze / internal/stanalyzer, operating on the Go source of
//     applications written against the simulator's MPI interface.
//   - Profiler (online event collection): attached automatically by Run,
//     or manually via internal/profiler as an mpi.Hook.
//   - DN-Analyzer (offline trace analysis and error detection): Check /
//     AnalyzeTraceDir / internal/core.
//
// A minimal round trip:
//
//	report, err := mcchecker.Run(mcchecker.Config{Ranks: 2}, func(p *mpi.Proc) error {
//		win := p.Alloc(64, "win")
//		w := p.WinCreate(win, 1, p.CommWorld())
//		w.Fence(mpi.AssertNone)
//		// ... one-sided communication ...
//		w.Fence(mpi.AssertNone)
//		w.Free()
//		return nil
//	})
//
// Violations are reported with the paper's diagnostics: the pair of
// conflicting operations, each with file, routine and line.
package mcchecker

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/stanalyzer"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Re-exported result types.
type (
	// Report is the analysis result: violations plus statistics.
	Report = core.Report
	// Violation is one detected memory consistency error or warning.
	Violation = core.Violation
	// StaticReport is ST-Analyzer's list of relevant variables.
	StaticReport = stanalyzer.Report
)

// Severity and class constants, re-exported for matching on violations.
const (
	SevError        = core.SevError
	SevWarning      = core.SevWarning
	WithinEpoch     = core.WithinEpoch
	AcrossProcesses = core.AcrossProcesses
)

// Config controls a checked run.
type Config struct {
	// Ranks is the number of simulated MPI processes (required, > 0).
	Ranks int

	// Relevant lists the buffer names to instrument, typically from
	// StaticAnalyze(...).BufferNames(). Nil instruments every tracked
	// buffer (full instrumentation — higher overhead, same detections on
	// programs whose relevant set is complete).
	Relevant []string

	// TraceDir, when non-empty, persists the per-rank trace files there
	// (like the paper's Profiler writing to local disk) in addition to the
	// in-memory analysis.
	TraceDir string

	// IntraEpochOnly disables cross-process detection, reproducing the
	// SyncChecker baseline.
	IntraEpochOnly bool

	// CollectStats enables the observability layer for the run: simulator,
	// profiler, and analyzer metrics (per-phase wall times, event and epoch
	// counts) are collected and attached to Report.Stats. Off by default;
	// the disabled path costs one pointer check per instrumented site.
	CollectStats bool
}

// Run executes the program on Config.Ranks simulated MPI ranks with the
// profiler attached, then runs the offline analysis and returns the report.
// A run error (deadlock, MPI misuse, or the body's own error) is returned
// without analysis.
func Run(cfg Config, body func(p *mpi.Proc) error) (*Report, error) {
	var reg *obs.Registry
	if cfg.CollectStats {
		reg = obs.NewRegistry()
	}
	set, err := traceWith(cfg, body, reg)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	if cfg.IntraEpochOnly {
		opts.CrossProcess = false
	}
	opts.Obs = reg
	rep, err := core.AnalyzeWith(set, opts)
	if err != nil {
		return nil, err
	}
	if reg != nil {
		rep.Stats = reg.Snapshot()
	}
	return rep, nil
}

// Trace executes the program with the profiler attached and returns the
// collected trace set without analyzing it.
func Trace(cfg Config, body func(p *mpi.Proc) error) (*trace.Set, error) {
	return traceWith(cfg, body, nil)
}

func traceWith(cfg Config, body func(p *mpi.Proc) error, reg *obs.Registry) (*trace.Set, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("mcchecker: Config.Ranks must be positive")
	}
	sink := trace.NewMemorySink()
	var rel profiler.Relevance
	if cfg.Relevant != nil {
		rel = profiler.FromNames(cfg.Relevant)
	}
	pr := profiler.NewObs(sink, rel, reg)
	if err := mpi.Run(cfg.Ranks, mpi.Options{Hook: pr, Obs: reg}, body); err != nil {
		return nil, err
	}
	set := sink.Set()
	if cfg.TraceDir != "" {
		if err := trace.WriteDirObs(cfg.TraceDir, set, reg); err != nil {
			return nil, fmt.Errorf("mcchecker: writing traces: %w", err)
		}
	}
	return set, nil
}

// Check analyzes an already-collected trace set with the full detector.
func Check(set *trace.Set) (*Report, error) {
	return core.Analyze(set)
}

// RunOnline executes the program with the streaming analyzer attached
// (the online mode the paper proposes in §VII-B): completed concurrent
// regions are analyzed while the program is still running, onViolation
// fires as soon as each distinct violation is found, and analyzed events
// are discarded so memory stays bounded by the largest region. The final
// report is equivalent to Run's.
func RunOnline(cfg Config, body func(p *mpi.Proc) error, onViolation func(v *Violation)) (*Report, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("mcchecker: Config.Ranks must be positive")
	}
	var reg *obs.Registry
	if cfg.CollectStats {
		reg = obs.NewRegistry()
	}
	sc := stream.New(cfg.Ranks, onViolation)
	sc.SetObs(reg)
	var rel profiler.Relevance
	if cfg.Relevant != nil {
		rel = profiler.FromNames(cfg.Relevant)
	}
	pr := profiler.NewObs(sc, rel, reg)
	if err := mpi.Run(cfg.Ranks, mpi.Options{Hook: pr, Obs: reg}, body); err != nil {
		return nil, err
	}
	rep, err := sc.Finish()
	if err != nil {
		return nil, err
	}
	if reg != nil {
		rep.Stats = reg.Snapshot()
	}
	return rep, nil
}

// AnalyzeTraceDir loads the per-rank trace files from dir (as written by a
// previous run with Config.TraceDir) and analyzes them — the offline
// workflow of the paper's DN-Analyzer.
func AnalyzeTraceDir(dir string) (*Report, error) {
	set, err := trace.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	return core.Analyze(set)
}

// StaticAnalyze runs ST-Analyzer over the Go source directory of an
// application, returning the relevant-variable report whose BufferNames
// feed Config.Relevant.
func StaticAnalyze(dir string) (*StaticReport, error) {
	return stanalyzer.AnalyzeDir(dir)
}
